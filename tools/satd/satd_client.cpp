// satd-client — load and correctness driver for satd.
//
//   satd-client --port-file /tmp/satd.port --connections 4 --requests 32
//               --shapes 256x256,128x512 --dtype i32 --validate
//
// Each connection runs on its own thread and *pipelines*: every request is
// written before replies are read, so a burst of same-shape frames lands in
// the server's queue together and exercises the batching path. Replies are
// matched to requests by trace_id (batching reorders across shapes).
// OVERLOADED replies are retried with backoff up to --retries times; any
// other error, a missing reply, or (--validate) a result that mismatches
// the sat_sequential oracle makes the exit status nonzero.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/matrix.hpp"
#include "host/sat_cpu.hpp"
#include "tools/satd/client.hpp"
#include "util/argparse.hpp"

namespace {

struct Shape {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
};

std::vector<Shape> parse_shapes(const std::string& spec) {
  std::vector<Shape> shapes;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    unsigned r = 0, c = 0;
    if (std::sscanf(item.c_str(), "%ux%u", &r, &c) != 2 || r == 0 || c == 0) {
      std::fprintf(stderr, "satd-client: bad shape '%s' (want RxC)\n",
                   item.c_str());
      return {};
    }
    shapes.push_back({r, c});
    pos = end + 1;
  }
  return shapes;
}

std::uint16_t resolve_port(const satutil::ArgParser& args) {
  const std::string port_file = args.get("port-file");
  if (port_file.empty())
    return static_cast<std::uint16_t>(args.get_int("port"));
  std::FILE* f = std::fopen(port_file.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "satd-client: cannot read port file '%s'\n",
                 port_file.c_str());
    return 0;
  }
  unsigned port = 0;
  char line[128];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "port=%u", &port) == 1) break;
  }
  std::fclose(f);
  return static_cast<std::uint16_t>(port);
}

/// One request's spec + oracle, kept until its reply arrives.
template <class T>
struct Pending {
  Shape shape;
  sat::Matrix<T> input;
};

template <class T>
bool check_result(const Pending<T>& p, const satd::MatrixPayload& m) {
  sat::Matrix<T> expected(p.shape.rows, p.shape.cols);
  sathost::sat_sequential<T>(p.input.view(), expected.view());
  const T* got = reinterpret_cast<const T*>(m.data);
  for (std::uint32_t r = 0; r < p.shape.rows; ++r) {
    for (std::uint32_t c = 0; c < p.shape.cols; ++c) {
      const T want = expected(r, c);
      const T have = got[static_cast<std::size_t>(r) * p.shape.cols + c];
      bool ok;
      if constexpr (std::is_floating_point_v<T>) {
        const double tol =
            1e-4 * std::max(1.0, std::abs(static_cast<double>(want)));
        ok = std::abs(static_cast<double>(have) -
                      static_cast<double>(want)) <= tol;
      } else {
        ok = have == want;  // integral results are bit-exact
      }
      if (!ok) {
        std::fprintf(stderr,
                     "satd-client: mismatch at (%u,%u) of %ux%u: got %g "
                     "want %g\n",
                     r, c, p.shape.rows, p.shape.cols,
                     static_cast<double>(have), static_cast<double>(want));
        return false;
      }
    }
  }
  return true;
}

template <class T>
int run_connection(std::uint16_t port, satd::Dtype dtype,
                   const std::vector<Shape>& shapes, int requests,
                   std::uint64_t conn_index, std::uint64_t seed, bool validate,
                   int retries) {
  satd::Client client;
  if (!client.connect(port)) {
    std::fprintf(stderr, "satd-client: connect to 127.0.0.1:%u failed\n",
                 port);
    return 1;
  }

  std::map<std::uint64_t, Pending<T>> pending;
  for (int i = 0; i < requests; ++i) {
    const Shape shape = shapes[static_cast<std::size_t>(i) % shapes.size()];
    const std::uint64_t trace_id = (conn_index << 32) | std::uint64_t(i + 1);
    auto input = sat::Matrix<T>::random(shape.rows, shape.cols,
                                        seed + trace_id);
    const auto payload = satd::encode_matrix_payload(
        shape.rows, shape.cols, dtype, input.view().data());
    if (!client.send(satd::Type::kCompute, trace_id, payload)) {
      std::fprintf(stderr, "satd-client: send failed\n");
      return 1;
    }
    pending.emplace(trace_id, Pending<T>{shape, std::move(input)});
  }

  int failures = 0;
  std::map<std::uint64_t, int> retries_left;
  while (!pending.empty()) {
    satd::Frame reply;
    if (!client.recv(reply)) {
      std::fprintf(stderr, "satd-client: connection lost with %zu replies "
                           "outstanding\n",
                   pending.size());
      return 1;
    }
    auto it = pending.find(reply.trace_id);
    if (it == pending.end()) {
      std::fprintf(stderr, "satd-client: reply for unknown trace id %" PRIx64
                           "\n",
                   reply.trace_id);
      return 1;
    }
    if (reply.type == satd::Type::kError) {
      satd::ErrorPayload err;
      if (!satd::parse_error_payload(reply.payload, err)) return 1;
      if (err.code == satd::ErrorCode::kOverloaded) {
        int& left = retries_left.try_emplace(reply.trace_id, retries).first
                        ->second;
        if (left-- > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          const Pending<T>& p = it->second;
          const auto payload = satd::encode_matrix_payload(
              p.shape.rows, p.shape.cols, dtype, p.input.view().data());
          if (!client.send(satd::Type::kCompute, reply.trace_id, payload))
            return 1;
          continue;
        }
      }
      std::fprintf(stderr, "satd-client: server error %u: %s\n",
                   static_cast<unsigned>(err.code), err.message.c_str());
      ++failures;
      pending.erase(it);
      continue;
    }
    if (reply.type != satd::Type::kResult) {
      std::fprintf(stderr, "satd-client: unexpected reply type 0x%x\n",
                   static_cast<unsigned>(reply.type));
      return 1;
    }
    satd::MatrixPayload m;
    if (!satd::parse_matrix_payload(reply.payload, m) ||
        m.rows != it->second.shape.rows || m.cols != it->second.shape.cols) {
      std::fprintf(stderr, "satd-client: malformed RESULT payload\n");
      ++failures;
    } else if (validate && !check_result<T>(it->second, m)) {
      ++failures;
    }
    pending.erase(it);
  }
  return failures == 0 ? 0 : 1;
}

template <class T>
int run_all(std::uint16_t port, satd::Dtype dtype,
            const std::vector<Shape>& shapes, int connections, int requests,
            std::uint64_t seed, bool validate, int retries) {
  std::vector<std::thread> threads;
  std::vector<int> status(static_cast<std::size_t>(connections), 0);
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      status[static_cast<std::size_t>(c)] =
          run_connection<T>(port, dtype, shapes, requests,
                            static_cast<std::uint64_t>(c + 1), seed, validate,
                            retries);
    });
  }
  for (auto& t : threads) t.join();
  int rc = 0;
  for (const int s : status) rc |= s;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  satutil::ArgParser args("satd-client",
                          "satd load/correctness driver (see docs/satd.md)");
  args.add("port", "0", "satd binary-protocol port")
      .add("port-file", "", "read the port from satd's --port-file output")
      .add("connections", "2", "concurrent client connections")
      .add("requests", "8", "pipelined requests per connection")
      .add("shapes", "256x256", "comma list of RxC request shapes")
      .add("dtype", "i32", "element type: f32, i32, or i64")
      .add("seed", "1", "base RNG seed for request matrices")
      .add("retries", "50", "max OVERLOADED retries per request")
      .add_flag("validate", "check every result against sat_sequential")
      .add_flag("shutdown", "send a SHUTDOWN frame after the burst");
  if (!args.parse(argc, argv)) return 2;

  const std::uint16_t port = resolve_port(args);
  if (port == 0) {
    std::fprintf(stderr, "satd-client: no port (use --port or --port-file)\n");
    return 2;
  }
  const auto shapes = parse_shapes(args.get("shapes"));
  if (shapes.empty()) return 2;
  const int connections = static_cast<int>(args.get_int("connections"));
  const int requests = static_cast<int>(args.get_int("requests"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool validate = args.get_flag("validate");
  const int retries = static_cast<int>(args.get_int("retries"));
  const std::string dtype = args.get("dtype");

  int rc;
  if (dtype == "f32") {
    rc = run_all<float>(port, satd::Dtype::kF32, shapes, connections,
                        requests, seed, validate, retries);
  } else if (dtype == "i32") {
    rc = run_all<std::int32_t>(port, satd::Dtype::kI32, shapes, connections,
                               requests, seed, validate, retries);
  } else if (dtype == "i64") {
    rc = run_all<std::int64_t>(port, satd::Dtype::kI64, shapes, connections,
                               requests, seed, validate, retries);
  } else {
    std::fprintf(stderr, "satd-client: unknown dtype '%s'\n", dtype.c_str());
    return 2;
  }

  if (args.get_flag("shutdown")) {
    satd::Client client;
    if (!client.connect(port) || !client.send(satd::Type::kShutdown, 0)) {
      std::fprintf(stderr, "satd-client: SHUTDOWN send failed\n");
      return 1;
    }
    satd::Frame ack;
    if (!client.recv(ack) || ack.type != satd::Type::kPong) {
      std::fprintf(stderr, "satd-client: no SHUTDOWN ack\n");
      return 1;
    }
  }

  std::printf("satd-client: %d connection(s) x %d request(s): %s\n",
              connections, requests, rc == 0 ? "ok" : "FAILED");
  return rc;
}
