// satd — the SAT service daemon. Binds the length-prefixed binary protocol
// and the HTTP /metrics + /healthz shim on localhost and serves until
// SIGINT/SIGTERM or a SHUTDOWN frame. docs/satd.md is the operator manual.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "tools/satd/server.hpp"
#include "util/argparse.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

}  // namespace

int main(int argc, char** argv) {
  satutil::ArgParser args("satd", "SAT service daemon (see docs/satd.md)");
  args.add("port", "0", "TCP port for the binary protocol (0 = ephemeral)")
      .add("http-port", "0", "port for /metrics and /healthz (0 = ephemeral)")
      .add("port-file", "",
           "write 'port=N' and 'http=N' lines here once bound (for scripts)")
      .add("queue-cap", "64",
           "admission queue bound; a full queue replies OVERLOADED")
      .add("batch-max", "8", "max same-shape jobs coalesced per engine pass")
      .add("dispatchers", "1", "dispatcher threads draining the queue")
      .add("threads", "0", "engine pool workers (0 = hardware concurrency)")
      .add("tile-width", "0", "engine tile width W (0 = automatic)")
      .add("max-frame-mb", "64", "reject frames larger than this many MiB")
      .add("trace-out", "",
           "write a Chrome trace_events JSON here on shutdown");
  if (!args.parse(argc, argv)) return 2;

  obs::Registry metrics;
  std::unique_ptr<obs::TraceSink> trace;
  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty()) trace = std::make_unique<obs::TraceSink>();

  satd::ServerOptions opts;
  opts.port = static_cast<std::uint16_t>(args.get_int("port"));
  opts.http_port = static_cast<std::uint16_t>(args.get_int("http-port"));
  opts.queue_cap = static_cast<std::size_t>(args.get_int("queue-cap"));
  opts.batch_max = static_cast<std::size_t>(args.get_int("batch-max"));
  opts.dispatchers = static_cast<std::size_t>(args.get_int("dispatchers"));
  opts.cpu_threads = static_cast<std::size_t>(args.get_int("threads"));
  opts.tile_w = static_cast<std::size_t>(args.get_int("tile-width"));
  opts.max_frame_bytes =
      static_cast<std::size_t>(args.get_int("max-frame-mb")) << 20;
  opts.metrics = &metrics;
  opts.trace = trace.get();

  satd::Server server(opts);
  if (!server.start()) return 1;

  std::printf("satd listening on 127.0.0.1:%u (http 127.0.0.1:%u)\n",
              server.port(), server.http_port());
  std::fflush(stdout);

  const std::string port_file = args.get("port-file");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "satd: cannot write port file '%s'\n",
                   port_file.c_str());
      server.stop();
      return 1;
    }
    std::fprintf(f, "port=%u\nhttp=%u\n", server.port(), server.http_port());
    std::fclose(f);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Poll the signal flag between bounded waits: a handler can set a flag
  // but cannot notify the server's condition variable.
  while (g_signal == 0 && !server.wait_for_ms(200)) {
  }

  std::printf("satd: shutting down (%s)\n",
              g_signal != 0 ? "signal" : "SHUTDOWN frame");
  std::fflush(stdout);
  server.stop();

  if (trace && !trace->write_file(trace_out)) return 1;
  return 0;
}
