// Bounded MPMC job queue for satd's admission control.
//
// Mutex + condvar only, deliberately: the queue sits in front of the
// compute engines, where a request costs milliseconds — there is nothing
// for lock-free cleverness to win, and the plain version is trivially
// correct under satmc-style reasoning. try_push never blocks (full queue
// ⇒ immediate false ⇒ the server replies kOverloaded instead of hanging
// the client); pop blocks until an item, close(), or shutdown.
//
// pop_batch implements the server's shape coalescing: it removes the
// oldest job plus every other queued job with the same (rows, cols, dtype),
// up to `max_batch`, preserving arrival order within the batch. Jobs of
// other shapes keep their queue positions.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace satd {

template <class Job>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues unless full or closed. Never blocks. Returns false on
  /// rejection — the caller owes the client a backpressure reply.
  bool try_push(Job job) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(job));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the oldest job plus up to `max_batch - 1` later jobs that
  /// `same_shape(oldest, other)` accepts. Returns an empty vector only
  /// when the queue is closed and drained.
  template <class SameShape>
  std::vector<Job> pop_batch(std::size_t max_batch, SameShape&& same_shape) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::vector<Job> batch;
    if (items_.empty()) return batch;  // closed and drained
    batch.push_back(std::move(items_.front()));
    items_.pop_front();
    for (auto it = items_.begin();
         it != items_.end() && batch.size() < max_batch;) {
      if (same_shape(batch.front(), *it)) {
        batch.push_back(std::move(*it));
        it = items_.erase(it);
      } else {
        ++it;
      }
    }
    return batch;
  }

  /// Wakes every blocked pop_batch; queued jobs still drain first.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> items_;
  bool closed_ = false;
};

}  // namespace satd
