// satmc explorer: exhaustive BFS over the Model's canonical state space.
//
// Classic explicit-state reachability: a flat arena of packed states doubles
// as the BFS queue (states are explored in discovery order), a FNV-1a
// open-addressing table deduplicates canonical representatives, and a
// (parent, worker-slot) record per state reconstructs shortest
// counterexample schedules. Each stored transition is one chosen step plus
// its eager closure (every deterministic-and-invisible step that follows,
// fired immediately — see Model::eager), so chains of forced steps never
// occupy table entries; BFS order then finds a violation via the fewest
// stored transitions, keeping printed traces as short as the bug allows.
//
// Symmetry reduction stores only canonicalize()d states (worker records
// sorted), dividing the space by up to workers!. The recorded worker slot
// of a transition therefore names a *canonical* slot; replay() maps it back
// to a concrete worker with Model::canonical_perm while re-running the
// schedule from the initial state, so printed traces are concrete and
// internally consistent (worker ids persist across steps).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "model.hpp"

namespace satmc {

/// One step of a concrete counterexample schedule.
struct Step {
  std::size_t worker = 0;
  std::string desc;
};

struct Result {
  Verdict verdict = Verdict::kOk;
  std::string detail;             ///< violation description (empty when ok)
  std::size_t states = 0;         ///< canonical states explored
  std::size_t transitions = 0;    ///< transitions fired
  std::vector<Step> trace;        ///< concrete schedule to the violation
  std::vector<BlockedWait> blocked;  ///< parked waits (deadlock verdict)
};

class Explorer {
 public:
  explicit Explorer(const Model& model, bool symmetry = true,
                    std::size_t max_states = 64u << 20)
      : m_(model), symmetry_(symmetry), max_states_(max_states),
        stride_(model.state_size()) {}

  Result run() {
    Result res;
    slots_.assign(1u << 16, 0);
    arena_.clear();
    parent_.clear();
    pworker_.clear();
    pchoice_.clear();

    std::vector<std::uint8_t> scratch(stride_);
    m_.init(scratch.data());
    if (symmetry_) m_.canonicalize(scratch.data());
    insert(scratch.data(), kNoParent, 0);

    for (std::size_t head = 0; head < count(); ++head) {
      // The arena may grow (and move) while we expand this state; work on a
      // copy of the dequeued representative.
      std::vector<std::uint8_t> cur(arena_.begin() + head * stride_,
                                    arena_.begin() + (head + 1) * stride_);
      if (m_.all_done(cur.data())) {
        std::string detail;
        if (m_.check_terminal(cur.data(), &detail) != Verdict::kOk) {
          const std::size_t transitions = res.transitions;
          res = make_violation(head, -1, 0, Verdict::kIncompleteTerminal);
          res.detail = detail;
          res.transitions = transitions;
          finish(res);
          return res;
        }
        continue;  // clean terminal state: no successors
      }

      bool any_enabled = false;
      for (std::size_t w = 0; w < m_.workers(); ++w) {
        if (!m_.enabled(cur.data(), w)) continue;
        any_enabled = true;
        // A transition may branch (a claim round choosing a steal victim or
        // the early exit — Model::num_choices); expand one successor per
        // choice.
        const std::size_t nc = m_.num_choices(cur.data(), w);
        for (std::size_t choice = 0; choice < nc; ++choice) {
          std::memcpy(scratch.data(), cur.data(), stride_);
          Verdict v = m_.apply(scratch.data(), w, nullptr, choice);
          ++res.transitions;
          // Ample-set reduction, fused into the parent transition: fire
          // every eager step (deterministic, invisible to other workers —
          // Model::eager) right here, so linear chains of them never occupy
          // table entries. Eager steps commute and are confluent, so any
          // firing order reaches the same fixpoint, and make_violation
          // re-derives the chain during replay.
          while (v == Verdict::kOk) {
            std::size_t e = m_.workers();
            for (std::size_t w2 = 0; w2 < m_.workers(); ++w2)
              if (m_.eager(scratch.data(), w2)) {
                e = w2;
                break;
              }
            if (e == m_.workers()) break;
            v = m_.apply(scratch.data(), e, nullptr);
            ++res.transitions;
          }
          if (v != Verdict::kOk) {
            const std::size_t transitions = res.transitions;
            res = make_violation(head, static_cast<int>(w), choice, v);
            res.transitions = transitions;
            finish(res);
            return res;
          }
          if (symmetry_) m_.canonicalize(scratch.data());
          if (insert(scratch.data(), static_cast<std::uint32_t>(head),
                     static_cast<std::uint8_t>(w),
                     static_cast<std::uint8_t>(choice)) &&
              count() > max_states_) {
            res.verdict = Verdict::kIncompleteTerminal;
            res.detail = "state-space cap of " + std::to_string(max_states_) +
                         " states exceeded";
            finish(res);
            return res;
          }
        }
      }
      if (!any_enabled) {
        const std::size_t transitions = res.transitions;
        res = make_violation(head, -1, 0, Verdict::kDeadlock);
        res.transitions = transitions;
        finish(res);
        return res;
      }
    }
    finish(res);
    return res;
  }

 private:
  [[nodiscard]] std::size_t count() const { return parent_.size(); }

  void finish(Result& res) const {
    res.states = count();
    if (res.detail.empty() && res.verdict != Verdict::kOk &&
        !res.trace.empty())
      res.detail = res.trace.back().desc;
  }

  static std::uint64_t hash_bytes(const std::uint8_t* p, std::size_t n) {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
    return h;
  }

  /// Appends the state (with its BFS parent record) if unseen. Returns true
  /// when the state is new.
  bool insert(const std::uint8_t* s, std::uint32_t parent, std::uint8_t w,
              std::uint8_t choice = 0) {
    if (2 * (count() + 1) > slots_.size()) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t at = hash_bytes(s, stride_) & mask;
    while (slots_[at] != 0) {
      const std::size_t idx = slots_[at] - 1;
      if (std::memcmp(arena_.data() + idx * stride_, s, stride_) == 0)
        return false;
      at = (at + 1) & mask;
    }
    const std::size_t idx = count();
    arena_.insert(arena_.end(), s, s + stride_);
    parent_.push_back(parent);
    pworker_.push_back(w);
    pchoice_.push_back(choice);
    slots_[at] = static_cast<std::uint32_t>(idx + 1);
    return true;
  }

  void grow() {
    std::vector<std::uint32_t> fresh(slots_.size() * 2, 0);
    const std::size_t mask = fresh.size() - 1;
    for (std::size_t idx = 0; idx < count(); ++idx) {
      std::size_t at =
          hash_bytes(arena_.data() + idx * stride_, stride_) & mask;
      while (fresh[at] != 0) at = (at + 1) & mask;
      fresh[at] = static_cast<std::uint32_t>(idx + 1);
    }
    slots_.swap(fresh);
  }

  /// Builds the concrete schedule reaching canonical state `state_idx`,
  /// optionally firing one more transition on canonical slot `final_slot`
  /// with `final_choice` (the violating step; −1 for deadlock/terminal
  /// verdicts where the state itself is the witness).
  Result make_violation(std::size_t state_idx, int final_slot,
                        std::size_t final_choice, Verdict v) {
    Result res;
    res.verdict = v;

    struct Link {
      std::uint8_t slot, choice;
    };
    std::vector<Link> chain;
    for (std::size_t idx = state_idx; parent_[idx] != kNoParent;
         idx = parent_[idx])
      chain.push_back({pworker_[idx], pchoice_[idx]});
    std::reverse(chain.begin(), chain.end());

    std::vector<std::uint8_t> c(stride_);
    m_.init(c.data());
    std::vector<std::size_t> perm(m_.workers());
    auto concrete_worker = [&](std::uint8_t slot) {
      if (!symmetry_) return static_cast<std::size_t>(slot);
      m_.canonical_perm(c.data(), perm.data());
      return perm[slot];
    };

    // Each recorded transition is "apply(slot), then the eager closure" —
    // re-derive the closure chain here so the printed schedule lists every
    // concrete step. Closure steps commute, so the (deterministic) concrete
    // firing order reaching the same fixpoint need not match exploration's.
    const auto close_eager = [&]() -> Verdict {
      for (;;) {
        std::size_t e = m_.workers();
        for (std::size_t w = 0; w < m_.workers(); ++w)
          if (m_.eager(c.data(), w)) {
            e = w;
            break;
          }
        if (e == m_.workers()) return Verdict::kOk;
        Step step;
        step.worker = e;
        const Verdict cv = m_.apply(c.data(), e, &step.desc);
        res.trace.push_back(std::move(step));
        if (cv != Verdict::kOk) return cv;
      }
    };

    for (const auto& link : chain) {
      const std::size_t w = concrete_worker(link.slot);
      Step step;
      step.worker = w;
      m_.apply(c.data(), w, &step.desc, link.choice);
      res.trace.push_back(std::move(step));
      close_eager();
    }
    if (final_slot >= 0) {
      const std::size_t w =
          concrete_worker(static_cast<std::uint8_t>(final_slot));
      Step step;
      step.worker = w;
      Verdict fv = m_.apply(c.data(), w, &step.desc, final_choice);
      res.trace.push_back(std::move(step));
      // When the recorded step itself succeeded, the violation was found
      // inside its eager closure; every worker's eager chain is
      // deterministic, so replaying the closure hits it again.
      if (fv == Verdict::kOk) fv = close_eager();
      res.detail = res.trace.back().desc;
    }
    if (v == Verdict::kDeadlock) {
      std::string blocked_desc = "all live workers blocked:";
      for (std::size_t w = 0; w < m_.workers(); ++w) {
        if (m_.phase(c.data(), w) == Phase::kDone) continue;
        if (m_.phase(c.data(), w) == Phase::kRowWalk ||
            m_.phase(c.data(), w) == Phase::kColWalk ||
            m_.phase(c.data(), w) == Phase::kDiagWalk) {
          const BlockedWait bw = m_.wait_of(c.data(), w);
          res.blocked.push_back(bw);
          blocked_desc += " w" + std::to_string(w) + " waits " + bw.axis +
                          "[" + std::to_string(bw.tile) +
                          "] >= " + std::to_string(bw.want) + ";";
        } else {
          // A non-walk phase is always enabled; a deadlock can only park
          // workers on waits, but keep the report honest if that changes.
          blocked_desc +=
              " w" + std::to_string(w) + " stuck in " +
              phase_name(m_.phase(c.data(), w)) + ";";
        }
      }
      res.detail = blocked_desc;
    }
    return res;
  }

  static constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;

  const Model& m_;
  bool symmetry_;
  std::size_t max_states_;
  std::size_t stride_;
  std::vector<std::uint8_t> arena_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> pworker_;
  std::vector<std::uint8_t> pchoice_;
  std::vector<std::uint32_t> slots_;
};

}  // namespace satmc
