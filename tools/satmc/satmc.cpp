// satmc: static model checker for the 1R1W-SKSS-LB look-back protocol.
//
//   satmc --verify [--max-grid N] [--max-workers W]
//       Exhaustively checks the clean protocol for every g_rows×g_cols grid
//       with g_rows,g_cols ≤ N and 1..W workers; prints the state count per
//       configuration. Exit 0 iff every configuration is violation-free.
//
//   satmc --mutate all
//       Runs the three seeded protocol bugs, each at the smallest
//       configuration that exposes it, and requires the expected verdict
//       plus a counterexample schedule. The checker's own test suite.
//
//   satmc --grid RxC --workers W [--mutate NAME] [--emit-schedule FILE]
//       Checks one configuration; prints (and optionally emits as JSON) the
//       counterexample schedule if a violation is found.
//
//   satmc --dump-model
//       Prints the model's protocol declaration (flag lattices, transition
//       tables, publish sequences, walk thresholds, memory orders) as JSON
//       for tools/satmc/conformance.py to diff against the real headers.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "explore.hpp"
#include "model.hpp"
#include "util/argparse.hpp"

namespace {

using satmc::Explorer;
using satmc::Model;
using satmc::Mutation;
using satmc::Result;
using satmc::Verdict;

struct MutationCase {
  Mutation mutation;
  const char* name;
  std::size_t g_rows, g_cols, workers;
  Verdict expected;
};

// Smallest configurations that expose each seeded bug (2×2 needs a third
// worker for the read bugs: with two workers no in-flight LRS is ever read
// before its writer finishes; 2×2 with two workers suffices for the steal
// lost-update, whose double-popped serial lands on one tile's dst twice).
constexpr MutationCase kMutationCases[] = {
    {Mutation::kFlagBeforeData, "flag-before-data", 2, 2, 3,
     Verdict::kReadUnwritten},
    {Mutation::kSigmaInversion, "sigma-order-inversion", 2, 2, 2,
     Verdict::kDeadlock},
    {Mutation::kDroppedRelease, "dropped-release", 2, 2, 3,
     Verdict::kReadUnreleased},
    {Mutation::kRacySteal, "racy-steal", 2, 2, 2, Verdict::kDstRewrite},
};

Mutation parse_mutation(const std::string& name) {
  for (const auto& c : kMutationCases)
    if (name == c.name) return c.mutation;
  if (name.empty() || name == "none") return Mutation::kNone;
  std::fprintf(stderr, "satmc: unknown mutation '%s'\n", name.c_str());
  std::exit(2);
}

void print_trace(const Result& res) {
  std::printf("  counterexample schedule (%zu steps):\n", res.trace.size());
  for (std::size_t i = 0; i < res.trace.size(); ++i)
    std::printf("    %3zu. %s\n", i, res.trace[i].desc.c_str());
  if (!res.detail.empty()) std::printf("  violation: %s\n", res.detail.c_str());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    if (ch == '\n') {
      out += "\\n";
      continue;
    }
    out += ch;
  }
  return out;
}

bool emit_schedule(const std::string& path, const Model& m,
                   const Result& res) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "satmc: cannot write %s\n", path.c_str());
    return false;
  }
  f << "{\n"
    << "  \"tool\": \"satmc\",\n"
    << "  \"version\": 1,\n"
    << "  \"config\": {\"g_rows\": " << m.grid().g_rows()
    << ", \"g_cols\": " << m.grid().g_cols()
    << ", \"workers\": " << m.workers() << "},\n"
    << "  \"mutation\": \"" << satmc::mutation_name(m.mutation()) << "\",\n"
    << "  \"violation\": {\"kind\": \"" << satmc::verdict_name(res.verdict)
    << "\", \"detail\": \"" << json_escape(res.detail) << "\"},\n"
    << "  \"blocked\": [";
  for (std::size_t i = 0; i < res.blocked.size(); ++i) {
    const auto& b = res.blocked[i];
    f << (i ? ", " : "") << "{\"worker\": " << b.worker << ", \"axis\": \""
      << b.axis << "\", \"tile\": " << b.tile
      << ", \"want\": " << int{b.want} << "}";
  }
  f << "],\n  \"schedule\": [\n";
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    f << "    {\"step\": " << i << ", \"worker\": " << res.trace[i].worker
      << ", \"desc\": \"" << json_escape(res.trace[i].desc) << "\"}"
      << (i + 1 < res.trace.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return static_cast<bool>(f);
}

// The model's protocol declaration, for the conformance extractor. Every
// fact here is asserted against the real headers by conformance.py — edit
// the model and this dump together or the satmc_conformance ctest fails.
void dump_model() {
  std::printf(R"json({
  "tool": "satmc",
  "version": 1,
  "flags": {
    "R": {"LRS": 1, "GRS": 2, "GLS": 3, "GS": 4},
    "C": {"LCS": 1, "GCS": 2}
  },
  "transitions": {
    "R": [[0, 1], [1, 2], [2, 3], [3, 4]],
    "C": [[0, 1], [1, 2]]
  },
  "terminal": {"R": 4, "C": 2},
  "publish_sequence": {
    "fast": [["R", "GS"], ["C", "GCS"]],
    "slow": [["R", "LRS"], ["C", "LCS"], ["R", "GRS"], ["C", "GCS"],
             ["R", "GLS"], ["R", "GS"]]
  },
  "walks": [
    {"axis": "R", "local": "LRS", "global": "GRS"},
    {"axis": "C", "local": "LCS", "global": "GCS"},
    {"axis": "R", "local": "GLS", "global": "GS"}
  ],
  "fast_guard": [["R", "GRS"], ["C", "GCS"], ["R", "GS"]],
  "claim": {
    "scheme": "chunked-range-steal",
    "chunk": "ceil(total / (2 * workers))",
    "pop": "own-span cas",
    "refill": "cursor fetch_add",
    "steal": "tail-half cas",
    "cursor": "work_counter_"
  },
  "orders": {"publish": "release", "observe": "acquire", "claim": "relaxed",
             "steal": "relaxed"}
}
)json");
}

int run_verify(std::size_t max_grid, std::size_t max_workers, bool symmetry) {
  std::printf(
      "satmc: exhaustive verification, grids up to %zux%zu, up to %zu "
      "workers%s\n",
      max_grid, max_grid, max_workers, symmetry ? "" : " (symmetry off)");
  std::size_t configs = 0, total_states = 0;
  for (std::size_t gr = 1; gr <= max_grid; ++gr)
    for (std::size_t gc = 1; gc <= max_grid; ++gc)
      for (std::size_t w = 1; w <= max_workers; ++w) {
        Model m(gr, gc, w);
        Result res = Explorer(m, symmetry).run();
        ++configs;
        total_states += res.states;
        std::printf("  %zux%zu w=%zu: %-8s states=%-9zu transitions=%zu\n",
                    gr, gc, w, satmc::verdict_name(res.verdict), res.states,
                    res.transitions);
        if (res.verdict != Verdict::kOk) {
          print_trace(res);
          std::printf("satmc: VERIFY FAILED at %zux%zu w=%zu\n", gr, gc, w);
          return 1;
        }
      }
  std::printf(
      "satmc: verified %zu configurations clean (deadlock freedom, flag "
      "monotonicity, publish/release discipline, sigma progress); %zu "
      "canonical states total\n",
      configs, total_states);
  return 0;
}

int run_mutations(bool symmetry) {
  int rc = 0;
  for (const auto& c : kMutationCases) {
    Model m(c.g_rows, c.g_cols, c.workers, c.mutation);
    Result res = Explorer(m, symmetry).run();
    const bool pass =
        res.verdict == c.expected && !res.trace.empty();
    std::printf("satmc: mutation %-22s %zux%zu w=%zu -> %s (expected %s) %s\n",
                c.name, c.g_rows, c.g_cols, c.workers,
                satmc::verdict_name(res.verdict),
                satmc::verdict_name(c.expected), pass ? "PASS" : "FAIL");
    print_trace(res);
    if (!pass) rc = 1;
  }
  if (rc == 0)
    std::printf("satmc: all %zu seeded mutations produced their expected "
                "counterexamples\n",
                std::size(kMutationCases));
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  satutil::ArgParser args("satmc",
                          "static model checker for the 1R1W-SKSS-LB "
                          "look-back protocol");
  args.add_flag("verify", "sweep all configs up to --max-grid/--max-workers")
      .add("max-grid", "4", "max tiles per grid side for --verify")
      .add("max-workers", "4", "max worker count for --verify")
      .add("grid", "", "single config: RxC tile grid (e.g. 2x2)")
      .add("workers", "2", "single config: worker count")
      .add("mutate", "", "seeded bug to inject (name, or 'all')")
      .add("emit-schedule", "", "write the counterexample schedule JSON here")
      .add_flag("no-symmetry", "disable worker-permutation reduction")
      .add_flag("dump-model", "print the protocol declaration as JSON");
  if (!args.parse(argc, argv)) return 2;

  const bool symmetry = !args.get_flag("no-symmetry");

  if (args.get_flag("dump-model")) {
    dump_model();
    return 0;
  }
  if (args.get_flag("verify")) {
    const auto max_grid = static_cast<std::size_t>(args.get_int("max-grid"));
    const auto max_workers =
        static_cast<std::size_t>(args.get_int("max-workers"));
    if (max_workers > 16) {
      std::fprintf(stderr, "satmc: at most 16 workers supported\n");
      return 2;
    }
    return run_verify(max_grid, max_workers, symmetry);
  }
  if (args.get("mutate") == "all") return run_mutations(symmetry);

  const std::string grid = args.get("grid");
  if (grid.empty()) {
    std::fprintf(stderr, "%s", args.usage().c_str());
    return 2;
  }
  const auto x = grid.find('x');
  if (x == std::string::npos) {
    std::fprintf(stderr, "satmc: --grid wants RxC, got '%s'\n", grid.c_str());
    return 2;
  }
  const std::size_t gr = std::stoul(grid.substr(0, x));
  const std::size_t gc = std::stoul(grid.substr(x + 1));
  const auto workers = static_cast<std::size_t>(args.get_int("workers"));
  if (gr == 0 || gc == 0 || workers == 0 || workers > 16) {
    std::fprintf(stderr, "satmc: bad config %zux%zu w=%zu\n", gr, gc,
                 workers);
    return 2;
  }

  Model m(gr, gc, workers, parse_mutation(args.get("mutate")));
  Result res = Explorer(m, symmetry).run();
  std::printf("satmc: %zux%zu w=%zu mutation=%s -> %s states=%zu "
              "transitions=%zu\n",
              gr, gc, workers, satmc::mutation_name(m.mutation()),
              satmc::verdict_name(res.verdict), res.states, res.transitions);
  if (res.verdict != Verdict::kOk) print_trace(res);

  const std::string out = args.get("emit-schedule");
  if (!out.empty()) {
    if (res.verdict == Verdict::kOk) {
      std::fprintf(stderr,
                   "satmc: no violation found, nothing to emit to %s\n",
                   out.c_str());
      return 1;
    }
    if (!emit_schedule(out, m, res)) return 1;
    std::printf("satmc: schedule written to %s\n", out.c_str());
  }

  // With a mutation requested, finding its violation is the success case.
  if (m.mutation() != Mutation::kNone)
    return res.verdict == Verdict::kOk ? 1 : 0;
  return res.verdict == Verdict::kOk ? 0 : 1;
}
