#!/usr/bin/env python3
"""Code↔model conformance extractor for satmc (stdlib only).

The satmc model checker (tools/satmc/) verifies an *independent* encoding of
the 1R1W-SKSS-LB look-back protocol.  That independence is only worth
anything if the encoding and the real headers cannot silently drift apart —
this tool closes the loop.  It parses the production headers with satlint's
sanitizing tokenizer and asserts that every protocol fact the code states is
exactly the fact the model declares (`satmc --dump-model`):

  * the hflag lattices in src/host/lookback.hpp (values of LRS/GRS/GLS/GS
    and LCS/GCS), and their device mirrors rflag/cflag in
    src/sat/aux_arrays.hpp;
  * the transition tables + terminal states registered with the protocol
    checker (src/sat/protocol_specs.hpp, kSkssLbTransitions{R,C});
  * the publish sequence of src/host/sat_skss_lb.hpp — fast path then slow
    path, in source order;
  * the three look-back walks' (axis, LOCAL, GLOBAL) threshold pairs;
  * the fast-path guard's peek thresholds;
  * the memory orders: publish = store-release, observe = load-acquire,
    claim counter = relaxed fetch_add.  Relaxed accesses covered by a
    satlint allow directive (with rationale) are exempt, exactly as satlint
    itself treats them.

Usage:
    conformance.py --root DIR --satmc PATH/TO/satmc [--lookback FILE]
                   [--expect-drift]

`--lookback` substitutes the flag-header source (used by the ctest entry
that feeds the deliberately drifted fixture in).  `--expect-drift` inverts
the exit code: 0 iff at least one conformance error was found — proving the
extractor actually detects drift.  Exit: 0 ok, 1 conformance errors (or,
with --expect-drift, no errors), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "satlint"))
import satlint  # noqa: E402  (satlint's tokenizer is the extraction engine)

# hflag / rflag / cflag constant declarations inside a namespace block.
NAMESPACE = re.compile(r"namespace\s+(\w+)\s*\{")
FLAG_CONST = re.compile(
    r"inline\s+constexpr\s+std::uint8_t\s+k(\w+)\s*=\s*(\d+)\s*;")
# iaux.r_status.publish(self, hflag::kGs);  (`iaux` is the per-image aux of
# the batch engine; the \w* prefix tolerates renames that keep the aux stem)
PUBLISH_CALL = re.compile(
    r"\w*aux\s*\.\s*([rc])_status\s*\.\s*publish\s*\(\s*self\s*,\s*"
    r"hflag::k(\w+)\s*\)")
# lookback_accumulate(iaux.r_status, ..., hflag::kLrs, hflag::kGrs, ...)
WALK_CALL = re.compile(
    r"lookback_accumulate\s*\(\s*\w*aux\s*\.\s*([rc])_status\s*,.*?"
    r"hflag::k(\w+)\s*,\s*hflag::k(\w+)", re.DOTALL)
# iaux.r_status.peek(left) >= hflag::kGrs
GUARD_PEEK = re.compile(
    r"\w*aux\s*\.\s*([rc])_status\s*\.\s*peek\s*\(\s*\w+\s*\)\s*>=\s*"
    r"hflag::k(\w+)")
# work_counter_.fetch_add(chunk_, std::memory_order_relaxed) — the claim
# cursor lives in ClaimScheduler (src/host/lookback.hpp) since the
# claim-range scheme replaced the engine's per-tile counter.
CLAIM_ORDER = re.compile(
    r"work_counter_?\s*\.\s*fetch_add\s*\([^)]*memory_order(?:::|_)(\w+)")
# compare_exchange_weak(cur, pack(...), std::memory_order_relaxed, ...) —
# the pop/steal CASes of ClaimScheduler.
CLAIM_CAS_ORDER = re.compile(
    r"compare_exchange_weak\s*\(\s*cur\s*,[^;]*?memory_order(?:::|_)(\w+)")
# The tail-half split point of the steal.
STEAL_SPLIT = re.compile(r"next\s*\+\s*\(\s*end\s*-\s*next\s*\)\s*/\s*2")
# range_chunk's ceil(total / (2*workers)): the two-slices-per-worker divisor
# and the round-up numerator.
CHUNK_SLICES = re.compile(r"2\s*\*\s*std::max<\s*std::size_t\s*>\s*\(\s*1")
CHUNK_CEIL = re.compile(r"\+\s*slices\s*-\s*1\s*\)\s*/\s*slices")
# {0, rflag::kLrs},  /  {rflag::kGls, rflag::kGs},
TRANSITION_ROW = re.compile(
    r"\{\s*(0|[rc]flag::k\w+)\s*,\s*([rc]flag::k\w+)\s*\}")
TERMINAL_DECL = re.compile(
    r"kSkssLbTerminal([RC])\s*=\s*([rc]flag::k(\w+))\s*;")
TRANSITION_TABLE = re.compile(
    r"kSkssLbTransitions([RC])\s*\[\]\s*=\s*\{(.*?)\};", re.DOTALL)

R_NAMES = ("LRS", "GRS", "GLS", "GS")
C_NAMES = ("LCS", "GCS")


class Conformance:
    def __init__(self) -> None:
        self.errors: list[str] = []
        self.checked = 0

    def expect(self, what: str, got, want) -> None:
        self.checked += 1
        if got == want:
            print(f"  ok: {what}: {got}")
        else:
            self.errors.append(f"{what}: code says {got!r}, model says {want!r}")
            print(f"  MISMATCH: {what}: code={got!r} model={want!r}")


def load_source(path: Path, root: Path) -> satlint.SourceFile:
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return satlint.SourceFile(path, rel, path.read_text(encoding="utf-8"))


def parse_flag_namespaces(src: satlint.SourceFile,
                          wanted: set[str]) -> dict[str, dict[str, int]]:
    """{namespace: {NAME: value}} for the requested flag namespaces."""
    out: dict[str, dict[str, int]] = {}
    current: str | None = None
    for line in src.code:
        m = NAMESPACE.search(line)
        if m and m.group(1) in wanted:
            current = m.group(1)
            out.setdefault(current, {})
        if current is None:
            continue
        for c in FLAG_CONST.finditer(line):
            out[current][c.group(1).upper()] = int(c.group(2))
        if "}" in line and NAMESPACE.search(line) is None \
                and FLAG_CONST.search(line) is None and current in out \
                and out[current]:
            current = None
    return out


def atomic_order_facts(src: satlint.SourceFile) -> dict[str, set[str]]:
    """Memory orders of flag-object atomic ops, minus allow-covered ones.

    Returns {"store": {orders...}, "load": {orders...}} for every atomic
    access whose object looks like a protocol flag (satlint's naming
    discipline) and that is not excused by a satlint allow directive.
    """
    facts: dict[str, set[str]] = {"store": set(), "load": set()}
    for lineno, line in enumerate(src.code, start=1):
        if not line.strip():
            continue
        window = src.window(lineno)
        for m in satlint.ATOMIC_OP.finditer(window):
            if m.start() >= len(line):
                continue
            obj = m.group("obj").lower()
            if not any(tok in obj for tok in satlint.FLAG_NAME_TOKENS):
                continue
            op = m.group("op")
            rule = ("flag-load-ordering" if op == "load"
                    else "flag-store-ordering")
            if src.allowed(lineno, rule):
                continue  # audited exception, rationale included
            orders = satlint.MEMORY_ORDER.findall(
                satlint._call_args(window, m.end() - 1))
            kind = "load" if op == "load" else "store"
            for o in orders:
                facts[kind].add(o)
    return facts


def resolve(sym: str, rflags: dict[str, int], cflags: dict[str, int]) -> int:
    if sym == "0":
        return 0
    name = sym.split("::k")[-1].upper()
    table = rflags if sym.startswith("rflag") else cflags
    if name not in table:
        raise KeyError(f"cannot resolve {sym}")
    return table[name]


def main() -> int:
    ap = argparse.ArgumentParser(prog="conformance", description=__doc__)
    ap.add_argument("--root", default=".", help="repo root")
    ap.add_argument("--satmc", required=True, help="path to the satmc binary")
    ap.add_argument("--lookback", help="override src/host/lookback.hpp "
                                       "(drift-fixture injection)")
    ap.add_argument("--expect-drift", action="store_true",
                    help="succeed iff conformance errors are found")
    args = ap.parse_args()
    root = Path(args.root).resolve()

    try:
        dump = json.loads(subprocess.run(
            [args.satmc, "--dump-model"], check=True, capture_output=True,
            text=True).stdout)
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError) as e:
        print(f"conformance: cannot obtain model dump: {e}", file=sys.stderr)
        return 2

    lookback_path = Path(args.lookback) if args.lookback \
        else root / "src" / "host" / "lookback.hpp"
    skss_path = root / "src" / "host" / "sat_skss_lb.hpp"
    specs_path = root / "src" / "sat" / "protocol_specs.hpp"
    aux_path = root / "src" / "sat" / "aux_arrays.hpp"
    for p in (lookback_path, skss_path, specs_path, aux_path):
        if not p.is_file():
            print(f"conformance: missing source {p}", file=sys.stderr)
            return 2

    conf = Conformance()
    model_r = dump["flags"]["R"]
    model_c = dump["flags"]["C"]

    # 1. Host flag lattice (hflag) vs the model's declaration.
    print(f"[lookback] {lookback_path}")
    lookback = load_source(lookback_path, root)
    hflags = parse_flag_namespaces(lookback, {"hflag"}).get("hflag", {})
    conf.expect("hflag R lattice",
                {n: hflags.get(n) for n in R_NAMES}, model_r)
    conf.expect("hflag C lattice",
                {n: hflags.get(n) for n in C_NAMES}, model_c)

    # 2. Memory orders in the flag primitive (allow-covered ops exempt).
    orders = atomic_order_facts(lookback)
    conf.expect("flag publish store order", sorted(orders["store"]),
                [dump["orders"]["publish"]])
    conf.expect("flag observe load order", sorted(orders["load"]),
                [dump["orders"]["observe"]])

    # 3. Device mirrors (rflag/cflag) vs the model.
    print(f"[aux_arrays] {aux_path}")
    aux = load_source(aux_path, root)
    device = parse_flag_namespaces(aux, {"rflag", "cflag"})
    rflags = {n.upper(): v for n, v in device.get("rflag", {}).items()}
    cflags = {n.upper(): v for n, v in device.get("cflag", {}).items()}
    conf.expect("rflag lattice (device mirror)",
                {n: rflags.get(n) for n in R_NAMES}, model_r)
    conf.expect("cflag lattice (device mirror)",
                {n: cflags.get(n) for n in C_NAMES}, model_c)

    # 4. Registered transition tables + terminals (protocol_specs.hpp).
    print(f"[protocol_specs] {specs_path}")
    specs_text = "\n".join(load_source(specs_path, root).code)
    tables: dict[str, list[list[int]]] = {}
    for m in TRANSITION_TABLE.finditer(specs_text):
        rows = [[resolve(a, rflags, cflags), resolve(b, rflags, cflags)]
                for a, b in TRANSITION_ROW.findall(m.group(2))]
        tables[m.group(1)] = rows
    conf.expect("R transition table", tables.get("R"),
                dump["transitions"]["R"])
    conf.expect("C transition table", tables.get("C"),
                dump["transitions"]["C"])
    terminals = {m.group(1): resolve(m.group(2), rflags, cflags)
                 for m in TERMINAL_DECL.finditer(specs_text)}
    conf.expect("terminal states", terminals, dump["terminal"])

    # 5. The engine's publish sequence, walks, fast guard, claim order.
    print(f"[engine] {skss_path}")
    engine = load_source(skss_path, root)
    engine_text = "\n".join(engine.code)
    publishes = [[axis.upper(), name.upper()]
                 for axis, name in PUBLISH_CALL.findall(engine_text)]
    model_seq = dump["publish_sequence"]["fast"] + \
        dump["publish_sequence"]["slow"]
    conf.expect("publish sequence (fast, then slow; source order)",
                publishes, model_seq)
    walks = [{"axis": axis.upper(), "local": lo.upper(), "global": hi.upper()}
             for axis, lo, hi in WALK_CALL.findall(engine_text)]
    conf.expect("look-back walks (axis, LOCAL, GLOBAL)", walks,
                dump["walks"])
    guard = [[axis.upper(), name.upper()]
             for axis, name in GUARD_PEEK.findall(engine_text)]
    conf.expect("fast-path guard thresholds", guard, dump["fast_guard"])

    # 6. The claim-range scheduler (ClaimScheduler, lookback.hpp): cursor
    # order, pop/steal CAS orders, the tail-half split, the chunk formula.
    print(f"[claim scheduler] {lookback_path}")
    lookback_text = "\n".join(lookback.code)
    claim = CLAIM_ORDER.findall(lookback_text)
    conf.expect("claim cursor fetch_add order", sorted(set(claim)),
                [dump["orders"]["claim"]])
    cas = CLAIM_CAS_ORDER.findall(lookback_text)
    conf.expect("pop/steal CAS orders (success order per CAS)",
                sorted(set(cas)), [dump["orders"]["steal"]])
    conf.expect("steal takes the tail half",
                "tail-half cas" if STEAL_SPLIT.search(lookback_text)
                else "absent", dump["claim"]["steal"])
    chunk_code = "ceil(total / (2 * workers))" \
        if CHUNK_SLICES.search(lookback_text) and \
        CHUNK_CEIL.search(lookback_text) else "absent"
    conf.expect("range chunk formula", chunk_code, dump["claim"]["chunk"])
    conf.expect("claim cursor name",
                "work_counter_" if "work_counter_" in lookback_text
                else "absent", dump["claim"]["cursor"])

    print(f"conformance: {conf.checked} facts checked, "
          f"{len(conf.errors)} mismatches")
    for e in conf.errors:
        print(f"conformance error: {e}", file=sys.stderr)

    if args.expect_drift:
        if conf.errors:
            print("conformance: drift detected, as expected")
            return 0
        print("conformance: expected drift but everything conformed",
              file=sys.stderr)
        return 1
    return 1 if conf.errors else 0


if __name__ == "__main__":
    sys.exit(main())
