// Deliberately drifted copy of src/host/lookback.hpp's protocol surface —
// the negative test for tools/satmc/conformance.py (ctest
// satmc_conformance_drift feeds it in via --lookback and requires the
// extractor to reject it). Two seeded drifts:
//
//   1. the R lattice swaps GLS and GS (a waiter keyed on kGls would then
//      accept a tile whose diagonal sum is not published yet);
//   2. publish() stores the flag relaxed with no satlint allow — the flag
//      can pass the data it guards.
//
// Never compiled; exists only as extractor input, so it keeps exactly the
// declarations the extractor parses.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sathost {

namespace hflag {
inline constexpr std::uint8_t kLrs = 1;  ///< LRS(I,J) published
inline constexpr std::uint8_t kGrs = 2;  ///< GRS(I,J) published
inline constexpr std::uint8_t kGls = 4;  ///< DRIFT: swapped with kGs
inline constexpr std::uint8_t kGs = 3;   ///< DRIFT: swapped with kGls
inline constexpr std::uint8_t kLcs = 1;  ///< LCS(I,J) published
inline constexpr std::uint8_t kGcs = 2;  ///< GCS(I,J) published
}  // namespace hflag

class StatusFlags {
 public:
  void publish(std::size_t idx, std::uint8_t state) noexcept {
    // DRIFT: relaxed publish, and no audited-exception allow directive.
    flags_[idx].store(state, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint8_t peek(std::size_t idx) const noexcept {
    return flags_[idx].load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint8_t>* flags_ = nullptr;
};

}  // namespace sathost
