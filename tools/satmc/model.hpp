// satmc model: the host 1R1W-SKSS-LB look-back protocol as an explicit
// finite transition system.
//
// This is an *independent* encoding of the paper's §IV protocol — it
// deliberately does not include src/host/lookback.hpp or sat_skss_lb.hpp, so
// the conformance extractor (tools/satmc/conformance.py) can cross-check the
// real headers against the model's declarations and catch silent drift in
// either direction. The only shared code is the tile geometry
// (satalgo::TileGrid), so the model walks exactly the σ serial order the
// engine walks.
//
// State = (σ claim counter) × (per-worker program counter) × (per-tile flag
// pair + published-value lattice). Transitions are the protocol's *visible*
// steps — claims, flag publishes, look-back waits — with two sound
// reductions that keep 4×4 grids with 4 workers exhaustively checkable:
//
// 1. Step fusion (Lipton reduction for monotone one-shot flags). A step
//    fuses one read/decision prefix with the publishes that follow it
//    unconditionally: the fast-path check with its terminal publishes, the
//    slow-path check with the LRS/LCS publishes, and each walk's final
//    observe with the entire read-free publish chain behind it (GRS after
//    the row walk, GCS/GLS after the column walk, GS + dst after the
//    diagonal walk — chaining straight through when the next walk has zero
//    length). Every read in a fused step happens at the step's
//    start, each inner publish still checks strict monotonicity, and a
//    release drains the store buffer at the *first* releasing publish — so
//    the values another worker could read between the fused publishes are
//    exactly the values it reads after them (flags are monotone and values
//    write-once). The only behaviors the fusion removes are ones where
//    another worker observes a strict prefix of the publishes, and for this
//    protocol such an observer either reads the same value it would read
//    after the full step (its gating flag was already raised) or merely
//    waits longer (its gating flag rises later in the step) — a delay, not
//    a new outcome. Deadlocks are preserved too: mid-step states always
//    have the publishing worker enabled.
//
// 2. The fast-path predicate reads three flags in one transition where the
//    code issues three acquire loads. Flags are monotone, so a sequential
//    evaluation that succeeds implies all three thresholds hold at the last
//    load, and one that fails does so at a specific load — a state this
//    model also reaches by firing the check at that instant.
//
// (A third reduction — firing outcome-deterministic walk observes eagerly —
// lives in the explorer; see Model::eager.)
//
// Release/acquire is modeled with a per-value visibility lattice
// UNWRITTEN → LOCAL → VISIBLE: a worker's writes land as LOCAL (its store
// buffer), any release-publish by that worker promotes its pending writes to
// VISIBLE, and every cross-tile read asserts VISIBLE. A publish mutated to
// relaxed skips the promotion, so a reader that trusts the flag trips the
// read-before-release invariant — the model's rendering of "the flag passed
// the data on weakly ordered hardware".
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "sat/tiles.hpp"

namespace satmc {

// Flag lattices, independent re-declaration of the paper's Table II states
// (cross-checked against sathost::hflag by the conformance extractor).
namespace flag {
inline constexpr std::uint8_t kLrs = 1;
inline constexpr std::uint8_t kGrs = 2;
inline constexpr std::uint8_t kGls = 3;
inline constexpr std::uint8_t kGs = 4;
inline constexpr std::uint8_t kLcs = 1;
inline constexpr std::uint8_t kGcs = 2;
}  // namespace flag

/// Published per-tile quantities (Table II). Order is the value-lattice bit
/// layout in the packed state.
enum Value : std::uint8_t {
  kValLrs = 0,
  kValLcs = 1,
  kValGrs = 2,
  kValGcs = 3,
  kValGls = 4,
  kValGs = 5,
  kValCount = 6,
};

inline const char* value_name(std::uint8_t v) {
  static const char* names[kValCount] = {"LRS", "LCS", "GRS",
                                         "GCS", "GLS", "GS"};
  return v < kValCount ? names[v] : "?";
}

/// Visibility lattice of one published value.
enum Vis : std::uint8_t {
  kUnwritten = 0,  ///< never stored
  kLocal = 1,      ///< stored, still in the writer's store buffer
  kVisible = 2,    ///< released — an acquiring reader sees it
};

/// Worker program counter: one value per fused visible step of the worker
/// lambda in src/host/sat_skss_lb.hpp (see file comment for the fusion
/// argument).
enum class Phase : std::uint8_t {
  kClaim = 0,  ///< one claim round: pop own range, else refill off the
               ///< cursor, else steal a peer's tail half or exit
  kCheckFast,  ///< peek the 3 predecessors; fast: read + publish terminals;
               ///< slow: compute local SAT, publish LRS + LCS
  kRowWalk,    ///< wait R[left−k] ≥ LRS, read its LRS/GRS
  kPubGrs,     ///< publish R := GRS
  kColWalk,    ///< wait C[up−k] ≥ LCS, read its LCS/GCS
  kPubGcsGls,  ///< publish C := GCS, then R := GLS
  kDiagWalk,   ///< wait R[diag−k] ≥ GLS, read its GLS/GS
  kPubGs,      ///< publish R := GS, store the tile to dst → kClaim
  kDone,       ///< worker exited (σ exhausted)
};

inline const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kClaim: return "claim";
    case Phase::kCheckFast: return "check-fast";
    case Phase::kRowWalk: return "row-walk";
    case Phase::kPubGrs: return "pub-R:GRS";
    case Phase::kColWalk: return "col-walk";
    case Phase::kPubGcsGls: return "pub-C:GCS-R:GLS";
    case Phase::kDiagWalk: return "diag-walk";
    case Phase::kPubGs: return "pub-R:GS";
    case Phase::kDone: return "done";
  }
  return "?";
}

/// Seeded protocol bugs. Each must drive the clean-model invariants to a
/// counterexample — the checker's own mutation test suite.
enum class Mutation : std::uint8_t {
  kNone = 0,
  /// Publish the LRS/LCS flags *before* the local sums are written (the
  /// data lands only at the GRS publish). A row-walking neighbor that
  /// trusts the flag reads an unwritten LRS.
  kFlagBeforeData,
  /// The range pops hand serials out in *decreasing* order. Look-back
  /// dependencies then point at tiles claimed after the waiter; with fewer
  /// workers than tiles every worker ends up blocked on an unclaimed tile.
  kSigmaInversion,
  /// The GRS publish loses its release. The flag becomes observable while
  /// GRS is still in the writer's store buffer; the next row-walker reads a
  /// value no release edge ever made visible.
  kDroppedRelease,
  /// The steal loses the victim-side CAS (a lost update): the thief
  /// installs the stolen tail [mid, end) but the victim's span keeps it
  /// too, so both workers pop the same serials — the model's rendering of
  /// a steal that reads, splits, and re-reads without the atomic exchange.
  kRacySteal,
};

inline const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kFlagBeforeData: return "flag-before-data";
    case Mutation::kSigmaInversion: return "sigma-order-inversion";
    case Mutation::kDroppedRelease: return "dropped-release";
    case Mutation::kRacySteal: return "racy-steal";
  }
  return "?";
}

/// What a transition (or terminal check) can report.
enum class Verdict : std::uint8_t {
  kOk = 0,
  kDeadlock,            ///< live workers, no enabled transition
  kMonotonicity,        ///< a publish did not strictly raise the flag
  kReadUnwritten,       ///< read of a value nobody stored
  kReadUnreleased,      ///< read of a value no release edge published
  kDstRewrite,          ///< a tile's dst region stored twice
  kIncompleteTerminal,  ///< all workers exited with protocol state left over
};

inline const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kDeadlock: return "deadlock";
    case Verdict::kMonotonicity: return "flag-monotonicity-violation";
    case Verdict::kReadUnwritten: return "read-before-write";
    case Verdict::kReadUnreleased: return "read-before-release";
    case Verdict::kDstRewrite: return "dst-double-store";
    case Verdict::kIncompleteTerminal: return "sigma-progress-violation";
  }
  return "?";
}

/// A blocked wait, for deadlock diagnostics and the dynamic replay test.
struct BlockedWait {
  std::size_t worker = 0;
  char axis = 'R';        ///< 'R' or 'C' status array
  std::size_t tile = 0;   ///< row-major tile index
  std::uint8_t want = 0;  ///< wait threshold
};

/// The transition system for one (g_rows × g_cols tiles, nworkers) config.
///
/// Packed state layout (state_size() bytes):
///   [0]                       range cursor (serials granted to ranges)
///   [1 + 5w .. 1 + 5w + 4]    worker w: phase, serial (0xFF = none),
///                             walk k, range next, range end
///   [base_t + 3t .. +2]       tile t: flags byte (R | C<<3 | dst<<6),
///                             value lattice (6 values × 2 bits, LE u16)
///
/// The claim layer mirrors sathost::ClaimScheduler: each worker owns a
/// contiguous serial range [next, end) drawn off the shared cursor in
/// chunks of ceil(tiles / (2·workers)), pops it front-to-back, and — once
/// the cursor is drained and its own range empty — either steals the tail
/// half of a peer's range or exits. Pop, refill and steal are each a single
/// CAS/fetch_add in the engine, so each is one model transition; exit is
/// offered as a *choice* even while victims are visible, a sound
/// over-approximation of the engine's refill window (the cursor moves one
/// atomic before the refilled span becomes visible, so a scanning thief can
/// miss it and leave empty-handed). Claims carry no release edges in the
/// model — a serial is a pure work token, and the checker proves the R/C
/// flag protocol alone guards every cross-tile read.
///
/// Workers are symmetric: no transition reads a worker index (steal victims
/// are chosen by record value, not index), so permuting the worker records
/// of any reachable state yields a reachable state with the same future.
/// canonicalize() sorts the records; the explorer stores only canonical
/// representatives.
class Model {
 public:
  /// Bytes per packed worker record.
  static constexpr std::size_t kWRec = 5;

  Model(std::size_t g_rows, std::size_t g_cols, std::size_t nworkers,
        Mutation mutation = Mutation::kNone)
      : grid_(g_rows, g_cols, 1), nw_(nworkers), mut_(mutation) {
    const std::size_t slices = 2 * nw_;
    chunk_ = static_cast<std::uint8_t>(
        std::max<std::size_t>(1, (tiles() + slices - 1) / slices));
  }

  [[nodiscard]] std::size_t workers() const { return nw_; }
  [[nodiscard]] std::size_t tiles() const { return grid_.count(); }
  [[nodiscard]] const satalgo::TileGrid& grid() const { return grid_; }
  [[nodiscard]] Mutation mutation() const { return mut_; }
  [[nodiscard]] std::size_t chunk() const { return chunk_; }

  [[nodiscard]] std::size_t state_size() const {
    return 1 + kWRec * nw_ + 3 * grid_.count();
  }

  void init(std::uint8_t* s) const {
    std::fill(s, s + state_size(), std::uint8_t{0});
    for (std::size_t w = 0; w < nw_; ++w) wserial(s, w) = 0xFF;
  }

  // ── state accessors ──────────────────────────────────────────────────
  [[nodiscard]] std::uint8_t sigma(const std::uint8_t* s) const {
    return s[0];
  }
  [[nodiscard]] Phase phase(const std::uint8_t* s, std::size_t w) const {
    return static_cast<Phase>(s[1 + kWRec * w]);
  }
  [[nodiscard]] std::uint8_t range_next(const std::uint8_t* s,
                                        std::size_t w) const {
    return s[1 + kWRec * w + 3];
  }
  [[nodiscard]] std::uint8_t range_end(const std::uint8_t* s,
                                       std::size_t w) const {
    return s[1 + kWRec * w + 4];
  }
  [[nodiscard]] std::uint8_t r_flag(const std::uint8_t* s,
                                    std::size_t t) const {
    return tflags(s, t) & 0x7;
  }
  [[nodiscard]] std::uint8_t c_flag(const std::uint8_t* s,
                                    std::size_t t) const {
    return (tflags(s, t) >> 3) & 0x3;
  }
  [[nodiscard]] bool dst_written(const std::uint8_t* s, std::size_t t) const {
    return (tflags(s, t) >> 6) & 0x1;
  }
  [[nodiscard]] Vis vis(const std::uint8_t* s, std::size_t t,
                        std::uint8_t val) const {
    const std::size_t base = tile_base(t) + 1;
    const std::uint16_t packed =
        static_cast<std::uint16_t>(s[base] | (s[base + 1] << 8));
    return static_cast<Vis>((packed >> (2 * val)) & 0x3);
  }

  [[nodiscard]] bool all_done(const std::uint8_t* s) const {
    for (std::size_t w = 0; w < nw_; ++w)
      if (phase(s, w) != Phase::kDone) return false;
    return true;
  }

  [[nodiscard]] static bool is_walk(Phase p) {
    return p == Phase::kRowWalk || p == Phase::kColWalk ||
           p == Phase::kDiagWalk;
  }

  /// Worker `w` can fire its next transition in `s`. Only the three walk
  /// phases ever block (on their predecessor's flag); kDone is final.
  [[nodiscard]] bool enabled(const std::uint8_t* s, std::size_t w) const {
    switch (phase(s, w)) {
      case Phase::kDone:
        return false;
      case Phase::kRowWalk:
      case Phase::kColWalk:
      case Phase::kDiagWalk: {
        const BlockedWait bw = wait_of(s, w);
        const std::uint8_t cur =
            bw.axis == 'R' ? r_flag(s, bw.tile) : c_flag(s, bw.tile);
        return cur >= bw.want;
      }
      default:
        return true;
    }
  }

  /// Ample-set reduction hook: true when worker `w`'s next transition is
  /// outcome-deterministic and invisible to every other worker, so the
  /// explorer fires it immediately, fused into whatever transition exposed
  /// it (closure compression). Two cases:
  ///
  ///   * a walk observe whose predecessor flag already reached the GLOBAL
  ///     threshold with the global value released — the branch is fixed,
  ///     the value read is fixed and permanently visible (flags monotone,
  ///     values write-once), and the step touches only `w`'s own record;
  ///   * the exit step once σ is exhausted (σ never decreases).
  ///
  /// Such a transition commutes with every transition of every other
  /// worker, stays enabled forever, and cannot be part of a cycle (the
  /// whole system is acyclic: each step strictly advances a progress
  /// measure), so pruning the siblings loses no reachable violation.
  ///
  /// The observe case is gated on the *clean* model: a stopping observe
  /// fuses into the publish chain behind it, and pruning interleavings
  /// against those publishes is delay-equivalent only while the protocol's
  /// release discipline holds (file comment, reduction 1). A mutation
  /// breaks exactly that premise — e.g. dropped-release's witness is the
  /// window between the relaxed GRS publish and the publisher's next
  /// release, which the closure would fuse away. The exit case touches
  /// only the worker's own record and stays eager unconditionally.
  [[nodiscard]] bool eager(const std::uint8_t* s, std::size_t w) const {
    const Phase p = phase(s, w);
    if (p == Phase::kClaim) {
      // The exit step is forced (and invisible) only when the cursor is
      // drained and *no* span anywhere holds work — a condition that can
      // never become false again. While any victim is visible the round is
      // a real choice point (steal whom, or exit early) and stays lazy.
      if (range_next(s, w) < range_end(s, w) || s[0] < tiles()) return false;
      for (std::size_t w2 = 0; w2 < nw_; ++w2)
        if (range_next(s, w2) < range_end(s, w2)) return false;
      return true;
    }
    if (mut_ != Mutation::kNone) return false;
    if (!is_walk(p)) return false;
    const BlockedWait bw = wait_of(s, w);
    const std::uint8_t cur =
        bw.axis == 'R' ? r_flag(s, bw.tile) : c_flag(s, bw.tile);
    const auto [global_state, global_val] = walk_global(p);
    return cur >= global_state && vis(s, bw.tile, global_val) == kVisible;
  }

  /// The wait a walk-phase worker is parked on (valid only for walk phases).
  [[nodiscard]] BlockedWait wait_of(const std::uint8_t* s,
                                    std::size_t w) const {
    const auto [ti, tj] = grid_.tile_of_serial(wserial(s, w));
    const std::uint8_t k = wwalk(s, w);
    BlockedWait bw;
    bw.worker = w;
    switch (phase(s, w)) {
      case Phase::kRowWalk:
        bw.axis = 'R';
        bw.tile = grid_.idx(ti, tj - 1 - k);
        bw.want = flag::kLrs;
        break;
      case Phase::kColWalk:
        bw.axis = 'C';
        bw.tile = grid_.idx(ti - 1 - k, tj);
        bw.want = flag::kLcs;
        break;
      case Phase::kDiagWalk:
        bw.axis = 'R';
        bw.tile = grid_.idx(ti - 1 - k, tj - 1 - k);
        bw.want = flag::kGls;
        break;
      default:
        break;
    }
    return bw;
  }

  /// Nondeterministic branching degree of worker `w`'s next transition.
  /// Every phase is deterministic except a claim round at the steal point,
  /// which chooses a victim (by record value, keeping worker symmetry
  /// sound) or exits. The explorer expands one successor per choice.
  [[nodiscard]] std::size_t num_choices(const std::uint8_t* s,
                                        std::size_t w) const {
    if (phase(s, w) != Phase::kClaim) return 1;
    if (range_next(s, w) < range_end(s, w)) return 1;  // pop
    if (s[0] < tiles()) return 1;                      // refill
    std::size_t cand[16];
    return steal_candidates(s, w, cand) + 1;           // steals + exit
  }

  /// Fires worker `w`'s next transition in place. Must only be called when
  /// enabled(s, w) with choice < num_choices(s, w). Returns the first
  /// invariant violation, if any; when `desc` is non-null it receives a
  /// human-readable line for the schedule printout (filled for kOk steps
  /// too).
  Verdict apply(std::uint8_t* s, std::size_t w, std::string* desc,
                std::size_t choice = 0) const {
    switch (phase(s, w)) {
      case Phase::kClaim:
        return claim_round(s, w, desc, choice);

      case Phase::kCheckFast: {
        const auto [ti, tj] = grid_.tile_of_serial(wserial(s, w));
        const std::size_t self = grid_.idx(ti, tj);
        const std::size_t left = tj > 0 ? grid_.idx(ti, tj - 1) : 0;
        const std::size_t up = ti > 0 ? grid_.idx(ti - 1, tj) : 0;
        const std::size_t diag =
            (ti > 0 && tj > 0) ? grid_.idx(ti - 1, tj - 1) : 0;
        const bool fast = (tj == 0 || r_flag(s, left) >= flag::kGrs) &&
                          (ti == 0 || c_flag(s, up) >= flag::kGcs) &&
                          (ti == 0 || tj == 0 || r_flag(s, diag) >= flag::kGs);
        if (fast) {
          // Fused fast path: read the three GLOBAL prefixes, write every
          // own quantity and dst, publish both terminal flags.
          note(desc, w, "finds all predecessors GLOBAL -> fast path, "
                        "publishes R:=GS, C:=GCS");
          if (tj > 0)
            if (Verdict v = read(s, left, kValGrs, w, desc); v != Verdict::kOk)
              return v;
          if (ti > 0)
            if (Verdict v = read(s, up, kValGcs, w, desc); v != Verdict::kOk)
              return v;
          if (ti > 0 && tj > 0)
            if (Verdict v = read(s, diag, kValGs, w, desc); v != Verdict::kOk)
              return v;
          write_local(s, self, kValGrs);
          write_local(s, self, kValGcs);
          write_local(s, self, kValGs);
          if (Verdict v = store_dst(s, self, w, desc); v != Verdict::kOk)
            return v;
          if (Verdict v = publish(s, w, 'R', flag::kGs, true, desc);
              v != Verdict::kOk)
            return v;
          if (Verdict v = publish(s, w, 'C', flag::kGcs, true, desc);
              v != Verdict::kOk)
            return v;
          wserial(s, w) = 0xFF;
          set_phase(s, w, Phase::kClaim);
        } else {
          // Fused slow-path entry: compute the local SAT (LRS/LCS land in
          // the store buffer — unless the mutation defers them past the
          // flags), publish LRS then LCS, enter the row walk.
          note(desc, w, "finds predecessors incomplete -> look-back path, "
                        "publishes R:=LRS, C:=LCS");
          if (mut_ != Mutation::kFlagBeforeData) {
            write_local(s, self, kValLrs);
            write_local(s, self, kValLcs);
          }
          if (Verdict v = publish(s, w, 'R', flag::kLrs, true, desc);
              v != Verdict::kOk)
            return v;
          if (Verdict v = publish(s, w, 'C', flag::kLcs, true, desc);
              v != Verdict::kOk)
            return v;
          wwalk(s, w) = 0;
          set_phase(s, w, tj > 0 ? Phase::kRowWalk : Phase::kPubGrs);
        }
        return Verdict::kOk;
      }

      case Phase::kRowWalk:
        return walk_step(s, w, Phase::kPubGrs, desc);

      case Phase::kColWalk:
        return walk_step(s, w, Phase::kPubGcsGls, desc);

      case Phase::kDiagWalk:
        return walk_step(s, w, Phase::kPubGs, desc);

      case Phase::kPubGrs:
      case Phase::kPubGcsGls:
      case Phase::kPubGs:
        return run_publishes(s, w, desc);

      case Phase::kDone:
        break;
    }
    return Verdict::kOk;
  }

  /// σ-progress: when every worker has exited, every serial must have been
  /// claimed, every tile must sit at its terminal flags with its published
  /// values visible, and every dst region must be stored exactly once.
  Verdict check_terminal(const std::uint8_t* s, std::string* desc) const {
    if (s[0] != tiles()) {
      if (desc != nullptr)
        *desc = "all workers exited with unclaimed serials (sigma=" +
                std::to_string(s[0]) + " of " + std::to_string(tiles()) + ")";
      return Verdict::kIncompleteTerminal;
    }
    for (std::size_t t = 0; t < tiles(); ++t) {
      const bool ok = r_flag(s, t) == flag::kGs &&
                      c_flag(s, t) == flag::kGcs && dst_written(s, t) &&
                      vis(s, t, kValGs) == kVisible;
      if (!ok) {
        if (desc != nullptr)
          *desc = "tile " + std::to_string(t) +
                  " not retired at termination (R=" +
                  std::to_string(r_flag(s, t)) +
                  " C=" + std::to_string(c_flag(s, t)) +
                  " dst=" + (dst_written(s, t) ? "1" : "0") + ")";
        return Verdict::kIncompleteTerminal;
      }
    }
    return Verdict::kOk;
  }

  /// Sorts the worker records so symmetric states share one representative.
  void canonicalize(std::uint8_t* s) const {
    std::array<std::array<std::uint8_t, kWRec>, 16> recs;
    for (std::size_t w = 0; w < nw_; ++w)
      std::copy(s + 1 + kWRec * w, s + 1 + kWRec * (w + 1), recs[w].begin());
    std::sort(recs.begin(), recs.begin() + nw_);
    for (std::size_t w = 0; w < nw_; ++w)
      std::copy(recs[w].begin(), recs[w].end(), s + 1 + kWRec * w);
  }

  /// Stable permutation that canonicalize() would apply: perm[slot] = the
  /// worker index currently holding what ends up at canonical `slot`. Used
  /// to replay a canonical trace against a concrete state.
  void canonical_perm(const std::uint8_t* s, std::size_t* perm) const {
    for (std::size_t w = 0; w < nw_; ++w) perm[w] = w;
    std::stable_sort(perm, perm + nw_, [&](std::size_t a, std::size_t b) {
      return std::lexicographical_compare(
          s + 1 + kWRec * a, s + 1 + kWRec * (a + 1), s + 1 + kWRec * b,
          s + 1 + kWRec * (b + 1));
    });
  }

 private:
  [[nodiscard]] std::size_t tile_base(std::size_t t) const {
    return 1 + kWRec * nw_ + 3 * t;
  }
  [[nodiscard]] std::uint8_t tflags(const std::uint8_t* s,
                                    std::size_t t) const {
    return s[tile_base(t)];
  }
  [[nodiscard]] std::uint8_t& wserial(std::uint8_t* s, std::size_t w) const {
    return s[1 + kWRec * w + 1];
  }
  [[nodiscard]] std::uint8_t wserial(const std::uint8_t* s,
                                     std::size_t w) const {
    return s[1 + kWRec * w + 1];
  }
  [[nodiscard]] std::uint8_t& wwalk(std::uint8_t* s, std::size_t w) const {
    return s[1 + kWRec * w + 2];
  }
  [[nodiscard]] std::uint8_t wwalk(const std::uint8_t* s,
                                   std::size_t w) const {
    return s[1 + kWRec * w + 2];
  }
  [[nodiscard]] std::uint8_t& wrnext(std::uint8_t* s, std::size_t w) const {
    return s[1 + kWRec * w + 3];
  }
  [[nodiscard]] std::uint8_t& wrend(std::uint8_t* s, std::size_t w) const {
    return s[1 + kWRec * w + 4];
  }
  void set_phase(std::uint8_t* s, std::size_t w, Phase p) const {
    s[1 + kWRec * w] = static_cast<std::uint8_t>(p);
  }

  /// Steal victims of `thief`: every other worker holding a non-empty
  /// range, ordered by record *value* (not index) so the choice numbering
  /// is stable under the worker permutations symmetry reduction applies.
  /// Ties (identical records) lead to identical canonical successors, so
  /// which one replay picks is immaterial.
  std::size_t steal_candidates(const std::uint8_t* s, std::size_t thief,
                               std::size_t out[16]) const {
    std::size_t n = 0;
    for (std::size_t w = 0; w < nw_; ++w)
      if (w != thief && range_next(s, w) < range_end(s, w)) out[n++] = w;
    std::stable_sort(out, out + n, [&](std::size_t a, std::size_t b) {
      return std::lexicographical_compare(
          s + 1 + kWRec * a, s + 1 + kWRec * (a + 1), s + 1 + kWRec * b,
          s + 1 + kWRec * (b + 1));
    });
    return n;
  }

  /// One claim round of sathost::ClaimScheduler::next: pop the own range,
  /// else draw a chunk off the cursor, else steal a victim's tail half or
  /// exit. Each arm is one atomic RMW in the engine (the pop/refill
  /// *checks* read only state no other worker can grow, so fusing them
  /// with the RMW behind them is exact, not a reduction).
  Verdict claim_round(std::uint8_t* s, std::size_t w, std::string* desc,
                      std::size_t choice) const {
    if (wrnext(s, w) < wrend(s, w)) {  // pop
      const std::uint8_t at = wrnext(s, w)++;
      const std::uint8_t serial =
          mut_ == Mutation::kSigmaInversion
              ? static_cast<std::uint8_t>(tiles() - 1 - at)
              : at;
      wserial(s, w) = serial;
      set_phase(s, w, Phase::kCheckFast);
      if (desc != nullptr) {
        const auto [ti, tj] = grid_.tile_of_serial(serial);
        char buf[96];
        std::snprintf(buf, sizeof buf, "pops serial %u -> tile (%zu,%zu)",
                      serial, ti, tj);
        note(desc, w, buf);
      }
      return Verdict::kOk;
    }
    if (s[0] < tiles()) {  // refill
      const std::uint8_t base = s[0];
      const std::uint8_t take = static_cast<std::uint8_t>(
          std::min<std::size_t>(chunk_, tiles() - base));
      s[0] = static_cast<std::uint8_t>(base + take);
      wrnext(s, w) = base;
      wrend(s, w) = static_cast<std::uint8_t>(base + take);
      if (desc != nullptr) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "draws range [%u, %u) off the cursor", base,
                      base + take);
        note(desc, w, buf);
      }
      return Verdict::kOk;
    }
    std::size_t cand[16];
    const std::size_t n = steal_candidates(s, w, cand);
    if (choice < n) {  // steal the tail half of the chosen victim
      const std::size_t v = cand[choice];
      const std::uint8_t vnext = wrnext(s, v);
      const std::uint8_t vend = wrend(s, v);
      const std::uint8_t mid =
          static_cast<std::uint8_t>(vnext + (vend - vnext) / 2);
      wrnext(s, w) = mid;
      wrend(s, w) = vend;
      if (mut_ != Mutation::kRacySteal) wrend(s, v) = mid;
      if (desc != nullptr) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "steals range [%u, %u) from w%zu%s", mid, vend, v,
                      mut_ == Mutation::kRacySteal
                          ? " -- victim keeps it (lost update)"
                          : "");
        note(desc, w, buf);
      }
      return Verdict::kOk;
    }
    set_phase(s, w, Phase::kDone);
    note(desc, w, "exits (cursor drained, no range claimed)");
    return Verdict::kOk;
  }

  /// (GLOBAL flag threshold, GLOBAL value) of a walk phase.
  [[nodiscard]] static std::pair<std::uint8_t, std::uint8_t> walk_global(
      Phase p) {
    switch (p) {
      case Phase::kRowWalk: return {flag::kGrs, kValGrs};
      case Phase::kColWalk: return {flag::kGcs, kValGcs};
      default: return {flag::kGs, kValGs};  // kDiagWalk
    }
  }

  /// (LOCAL value, walk length) of worker w's walk phase.
  [[nodiscard]] std::pair<std::uint8_t, std::size_t> walk_local(
      const std::uint8_t* s, std::size_t w) const {
    const auto [ti, tj] = grid_.tile_of_serial(wserial(s, w));
    switch (phase(s, w)) {
      case Phase::kRowWalk: return {kValLrs, tj};
      case Phase::kColWalk: return {kValLcs, ti};
      default: return {kValGls, std::min(ti, tj)};  // kDiagWalk
    }
  }

  void set_vis(std::uint8_t* s, std::size_t t, std::uint8_t val,
               Vis v) const {
    const std::size_t base = tile_base(t) + 1;
    std::uint16_t packed =
        static_cast<std::uint16_t>(s[base] | (s[base + 1] << 8));
    packed = static_cast<std::uint16_t>(
        (packed & ~(0x3u << (2 * val))) |
        (static_cast<std::uint16_t>(v) << (2 * val)));
    s[base] = static_cast<std::uint8_t>(packed & 0xFF);
    s[base + 1] = static_cast<std::uint8_t>(packed >> 8);
  }

  void write_local(std::uint8_t* s, std::size_t t, std::uint8_t val) const {
    if (vis(s, t, val) == kUnwritten) set_vis(s, t, val, kLocal);
  }

  /// An acquiring cross-tile read of `val` of tile `t` by worker `w`.
  Verdict read(std::uint8_t* s, std::size_t t, std::uint8_t val,
               std::size_t w, std::string* desc) const {
    const Vis v = vis(s, t, val);
    if (v == kVisible) return Verdict::kOk;
    if (desc != nullptr) {
      const auto [ti, tj] = tile_rc(t);
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "reads %s of tile (%zu,%zu) which is %s",
                    value_name(val), ti, tj,
                    v == kUnwritten ? "not yet written"
                                    : "written but never released");
      note(desc, w, buf);
    }
    return v == kUnwritten ? Verdict::kReadUnwritten
                           : Verdict::kReadUnreleased;
  }

  Verdict store_dst(std::uint8_t* s, std::size_t t, std::size_t w,
                    std::string* desc) const {
    if (dst_written(s, t)) {
      if (desc != nullptr) note(desc, w, "stores an already-stored dst tile");
      return Verdict::kDstRewrite;
    }
    s[tile_base(t)] |= std::uint8_t{1} << 6;
    return Verdict::kOk;
  }

  /// Publishes `state` on axis `axis` of worker `w`'s own tile and — when
  /// `release` — drains the worker's store buffer (promotes its tile's
  /// kLocal values to kVisible).
  Verdict publish(std::uint8_t* s, std::size_t w, char axis,
                  std::uint8_t state, bool release, std::string* desc) const {
    const auto [ti, tj] = grid_.tile_of_serial(wserial(s, w));
    const std::size_t self = grid_.idx(ti, tj);
    const std::uint8_t cur =
        axis == 'R' ? r_flag(s, self) : c_flag(s, self);
    if (state <= cur) {
      if (desc != nullptr) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "publishes %c[(%zu,%zu)] := %u over %u -- flag did "
                      "not rise (monotonicity)",
                      axis, ti, tj, state, cur);
        note(desc, w, buf);
      }
      return Verdict::kMonotonicity;
    }
    std::uint8_t f = tflags(s, self);
    if (axis == 'R')
      f = static_cast<std::uint8_t>((f & ~0x7u) | state);
    else
      f = static_cast<std::uint8_t>((f & ~(0x3u << 3)) | (state << 3));
    s[tile_base(self)] = static_cast<std::uint8_t>(
        f | (tflags(s, self) & (std::uint8_t{1} << 6)));
    if (release)
      for (std::uint8_t v = 0; v < kValCount; ++v)
        if (vis(s, self, v) == kLocal) set_vis(s, self, v, kVisible);
    return Verdict::kOk;
  }

  /// One look-back observe: the caller guaranteed flag ≥ local threshold.
  /// Branch on the snapshot exactly like lookback_accumulate: at or above
  /// the GLOBAL state read the global vector and stop; otherwise read the
  /// local vector and keep walking until the border terminates the walk.
  Verdict walk_step(std::uint8_t* s, std::size_t w, Phase stop_phase,
                    std::string* desc) const {
    const BlockedWait bw = wait_of(s, w);
    const std::uint8_t seen =
        bw.axis == 'R' ? r_flag(s, bw.tile) : c_flag(s, bw.tile);
    const auto [global_state, global_val] = walk_global(phase(s, w));
    const auto [local_val, steps] = walk_local(s, w);
    const bool global = seen >= global_state;
    if (desc != nullptr) {
      const auto [pi, pj] = tile_rc(bw.tile);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "look-back observes %c[(%zu,%zu)] = %u, takes %s %s",
                    bw.axis, pi, pj, seen, global ? "GLOBAL" : "LOCAL",
                    value_name(global ? global_val : local_val));
      note(desc, w, buf);
    }
    if (Verdict v = read(s, bw.tile, global ? global_val : local_val, w, desc);
        v != Verdict::kOk)
      return v;
    if (global || wwalk(s, w) + 1u >= steps) {
      // The walk is over; the publish chain that follows it is
      // unconditional and read-free, so it fuses into this observe
      // (file comment, reduction 1).
      set_phase(s, w, stop_phase);
      wwalk(s, w) = 0;
      return run_publishes(s, w, desc);
    }
    ++wwalk(s, w);
    return Verdict::kOk;
  }

  /// Executes worker `w`'s pending publish phases (kPubGrs, kPubGcsGls,
  /// kPubGs) back-to-back until the worker reaches a blocking walk or
  /// returns to kClaim. Sound as a single transition: the chained phases
  /// contain no cross-tile reads — only same-tile value writes and monotone
  /// flag publishes — so an observer sees either none or all of them, and
  /// anything it could do in between it can still do after (see the fusion
  /// argument in the file comment).
  Verdict run_publishes(std::uint8_t* s, std::size_t w,
                        std::string* desc) const {
    std::string segs;
    char buf[96];
    const auto seg = [&](const char* what) {
      if (desc == nullptr) return;
      if (!segs.empty()) segs += ", then ";
      segs += what;
    };
    for (;;) {
      const Phase p = phase(s, w);
      if (p != Phase::kPubGrs && p != Phase::kPubGcsGls &&
          p != Phase::kPubGs) {
        if (desc != nullptr && !segs.empty()) {
          if (desc->empty())
            *desc = "w" + std::to_string(w) + " " + segs;
          else
            *desc += "; " + segs;
        }
        return Verdict::kOk;
      }
      const auto [ti, tj] = grid_.tile_of_serial(wserial(s, w));
      const std::size_t self = grid_.idx(ti, tj);
      switch (p) {
        case Phase::kPubGrs: {
          if (mut_ == Mutation::kFlagBeforeData) {
            // The deferred local compute finally lands — long after the
            // LRS/LCS flags told the world it was there.
            write_local(s, self, kValLrs);
            write_local(s, self, kValLcs);
          }
          write_local(s, self, kValGrs);
          const bool release = mut_ != Mutation::kDroppedRelease;
          std::snprintf(buf, sizeof buf, "publishes R[(%zu,%zu)] := GRS (%s)",
                        ti, tj, release ? "release" : "RELAXED");
          seg(buf);
          if (Verdict v = publish(s, w, 'R', flag::kGrs, release, desc);
              v != Verdict::kOk)
            return v;
          wwalk(s, w) = 0;
          set_phase(s, w, ti > 0 ? Phase::kColWalk : Phase::kPubGcsGls);
          break;
        }

        case Phase::kPubGcsGls: {
          write_local(s, self, kValGcs);
          write_local(s, self, kValGls);
          std::snprintf(buf, sizeof buf,
                        "publishes C[(%zu,%zu)] := GCS, R[(%zu,%zu)] := GLS",
                        ti, tj, ti, tj);
          seg(buf);
          if (Verdict v = publish(s, w, 'C', flag::kGcs, true, desc);
              v != Verdict::kOk)
            return v;
          if (Verdict v = publish(s, w, 'R', flag::kGls, true, desc);
              v != Verdict::kOk)
            return v;
          wwalk(s, w) = 0;
          set_phase(s, w,
                    (ti > 0 && tj > 0) ? Phase::kDiagWalk : Phase::kPubGs);
          break;
        }

        case Phase::kPubGs: {
          write_local(s, self, kValGs);
          std::snprintf(buf, sizeof buf,
                        "publishes R[(%zu,%zu)] := GS, stores dst tile", ti,
                        tj);
          seg(buf);
          if (Verdict v = publish(s, w, 'R', flag::kGs, true, desc);
              v != Verdict::kOk)
            return v;
          // The single store to dst (worker-local; fused here).
          if (Verdict dv = store_dst(s, self, w, desc); dv != Verdict::kOk)
            return dv;
          wserial(s, w) = 0xFF;
          set_phase(s, w, Phase::kClaim);
          break;
        }

        default:
          break;  // unreachable: the loop head filtered the phase
      }
    }
  }

  [[nodiscard]] std::pair<std::size_t, std::size_t> tile_rc(
      std::size_t t) const {
    return {t / grid_.g_cols(), t % grid_.g_cols()};
  }

  static void note(std::string* desc, std::size_t w, const char* what) {
    if (desc == nullptr) return;
    *desc = "w" + std::to_string(w) + " " + what;
  }

  satalgo::TileGrid grid_;
  std::size_t nw_;
  Mutation mut_;
  std::uint8_t chunk_ = 1;
};

}  // namespace satmc
