// satcli — command-line front end for the library.
//
//   satcli --mode compute --rows 512 --cols 768 --algorithm skss_lb --w 64
//   satcli --mode compute --rows 1024 --cols 1024 --check-protocol
//   satcli --mode cell --n 8192 --algorithm skss_lb --w 128
//   satcli --mode tune --rows 4096 --cols 4096
//   satcli --mode trace --n 2048 --w 128 --out trace.csv
//   satcli --mode verify
//
// modes:
//   compute  run an algorithm on a random matrix, validate, print stats
//   cell     price one Table III cell with the performance model
//   tune     pick the fastest (algorithm, W) for a shape
//   trace    dump the per-block timeline of a SKSS-LB run as CSV
//   verify   run every registry algorithm under the soft-sync protocol
//            checker across a size/tile-width sweep
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "model/table3.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/argparse.hpp"
#include "util/format.hpp"

namespace {

/// Observability requested on the command line: `--metrics[=json|pretty]`
/// and `--trace-out <file>`, honored by compute and cell modes.
struct ObsRequest {
  std::string metrics_mode;  ///< "" (off), "json", or "pretty"
  std::string trace_path;    ///< "" when no trace requested
  obs::Registry registry;
  obs::TraceSink trace;

  [[nodiscard]] bool metrics_on() const { return !metrics_mode.empty(); }
  [[nodiscard]] bool trace_on() const { return !trace_path.empty(); }

  explicit ObsRequest(const satutil::ArgParser& args) {
    const std::string m = args.get("metrics");
    if (m == "true" || m == "pretty") metrics_mode = "pretty";
    else if (m == "json") metrics_mode = "json";
    else if (m != "false") {
      std::fprintf(stderr,
                   "unknown --metrics format '%s' (want json or pretty)\n",
                   m.c_str());
      std::exit(1);
    }
    trace_path = args.get("trace-out");
  }

  /// Prints the snapshot and writes the trace file. Returns false on I/O
  /// failure writing the trace.
  [[nodiscard]] bool finish() {
    if (metrics_on()) {
      const obs::Snapshot snap = registry.snapshot();
      const std::string out =
          metrics_mode == "json" ? snap.to_json() + "\n" : snap.to_pretty();
      std::fputs(out.c_str(), stdout);
    }
    if (trace_on()) {
      if (!trace.write_file(trace_path)) return false;
      std::printf("wrote %zu trace events to %s\n", trace.event_count(),
                  trace_path.c_str());
    }
    return true;
  }
};

sat::CpuEngine parse_host_impl(const std::string& name) {
  if (name == "sequential") return sat::CpuEngine::kSequential;
  if (name == "simd") return sat::CpuEngine::kSimd;
  if (name == "parallel") return sat::CpuEngine::kParallel;
  if (name == "wavefront") return sat::CpuEngine::kWavefront;
  if (name == "skss_lb") return sat::CpuEngine::kSkssLb;
  SAT_CHECK_MSG(false, "unknown host engine '" << name << "'");
  return sat::CpuEngine::kParallel;
}

sat::Storage parse_storage(const std::string& name) {
  if (name == "dense") return sat::Storage::kDense;
  if (name == "residual") return sat::Storage::kTiledResidual;
  if (name == "kahan") return sat::Storage::kKahanF32;
  SAT_CHECK_MSG(false, "unknown storage mode '" << name << "'");
  return sat::Storage::kDense;
}

satalgo::Algorithm parse_algorithm(const std::string& name) {
  if (name == "duplicate") return satalgo::Algorithm::kDuplicate;
  if (name == "2r2w") return satalgo::Algorithm::k2R2W;
  if (name == "2r2w_opt") return satalgo::Algorithm::k2R2WOptimal;
  if (name == "2r1w") return satalgo::Algorithm::k2R1W;
  if (name == "1r1w") return satalgo::Algorithm::k1R1W;
  if (name == "hybrid") return satalgo::Algorithm::kHybrid;
  if (name == "skss") return satalgo::Algorithm::kSkss;
  if (name == "skss_lb") return satalgo::Algorithm::kSkssLb;
  SAT_CHECK_MSG(false, "unknown algorithm '" << name << "'");
  return satalgo::Algorithm::kSkssLb;
}

int mode_compute(const satutil::ArgParser& args) {
  const auto rows = static_cast<std::size_t>(args.get_int("rows"));
  const auto cols = static_cast<std::size_t>(args.get_int("cols"));
  const auto batch = static_cast<std::size_t>(args.get_int("batch"));
  SAT_CHECK_MSG(batch > 0, "--batch must be at least 1");
  const auto input = sat::Matrix<float>::random(
      rows, cols, static_cast<std::uint64_t>(args.get_int("seed")), 0.0f, 1.0f);
  sat::Options opts;
  opts.algorithm = parse_algorithm(args.get("algorithm"));
  opts.tile_w = static_cast<std::size_t>(args.get_int("w"));
  // --host-impl switches the run to the CPU backend; --tile-width sets the
  // host tile size (independent of the device --w, which must stay a
  // multiple of 32).
  if (const std::string impl = args.get("host-impl"); !impl.empty()) {
    opts.backend = sat::Backend::kCpu;
    opts.cpu_engine = parse_host_impl(impl);
    opts.cpu_tile_w = static_cast<std::size_t>(args.get_int("tile-width"));
    opts.cpu_threads = static_cast<std::size_t>(args.get_int("threads"));
  }
  opts.storage = parse_storage(args.get("storage"));
  SAT_CHECK_MSG(
      opts.storage == sat::Storage::kDense ||
          opts.backend == sat::Backend::kCpu,
      "--storage " << args.get("storage") << " needs --host-impl (CPU only)");
  gpusim::ProtocolChecker checker;
  if (args.get_flag("check-protocol")) opts.checker = &checker;
  ObsRequest obs(args);
  if (obs.metrics_on()) opts.metrics = &obs.registry;
  if (obs.trace_on()) opts.trace = &obs.trace;
  if (batch > 1) {
    // Batched run: one launch over `batch` same-shape random images. On the
    // CPU backend with --host-impl skss_lb this pipelines images through one
    // claim-range scheduler; on the simulated GPU it is one batched kernel.
    std::vector<sat::Matrix<float>> inputs;
    inputs.reserve(batch);
    for (std::size_t k = 0; k < batch; ++k) {
      inputs.push_back(sat::Matrix<float>::random(
          rows, cols, static_cast<std::uint64_t>(args.get_int("seed")) + k,
          0.0f, 1.0f));
    }
    const auto bres = sat::compute_sat_batch(inputs, opts);
    std::optional<std::string> err;
    for (std::size_t k = 0; k < batch && !err; ++k) {
      if (auto e = sat::validate_sat(inputs[k], bres.tables[k])) {
        err = "image " + std::to_string(k) + ": " + *e;
      }
    }
    std::printf("%s on %zu x %zux%zu: %s\n", bres.stats.algorithm.c_str(),
                batch, rows, cols,
                err ? err->c_str() : "all images validated against CPU oracle");
    if (!obs.finish()) return 1;
    return err ? 1 : 0;
  }
  const auto result = sat::compute_sat(input, opts);
  const auto err = sat::validate_sat(input, result.table);
  if (opts.backend == sat::Backend::kCpu) {
    std::printf("%s on %zux%zu: %s\n", result.stats.algorithm.c_str(), rows,
                cols, err ? err->c_str() : "validated against CPU oracle");
  } else {
    std::printf("%s on %zux%zu (padded to %zu-aligned): %s\n",
                result.stats.algorithm.c_str(), rows, cols,
                result.stats.padded_n,
                err ? err->c_str() : "validated against CPU oracle");
  }
  if (opts.checker != nullptr)
    std::printf("protocol: %s\n", checker.summary().c_str());
  if (opts.backend != sat::Backend::kCpu) {
    std::printf(
        "kernels %zu | threads %s | reads %s | writes %s | model %.4f ms\n",
        result.stats.kernel_calls,
        satutil::format_count(result.stats.max_threads).c_str(),
        satutil::format_count(result.stats.element_reads).c_str(),
        satutil::format_count(result.stats.element_writes).c_str(),
        result.stats.critical_path_us / 1e3);
  }
  if (!obs.finish()) return 1;
  return err ? 1 : 0;
}

int mode_cell(const satutil::ArgParser& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n"));
  const auto algo = parse_algorithm(args.get("algorithm"));
  const auto w = static_cast<std::size_t>(args.get_int("w"));
  ObsRequest obs(args);
  const auto cell = satmodel::run_cell(
      n, algo, w, /*materialize=*/false, /*seed=*/1,
      obs.metrics_on() ? &obs.registry : nullptr,
      obs.trace_on() ? &obs.trace : nullptr);
  std::printf("%s, n=%zu, W=%zu: model %.4f ms", satalgo::name_of(algo), n, w,
              cell.model_ms);
  if (cell.paper_ms) std::printf(" (paper: %.4f ms)", *cell.paper_ms);
  std::printf("\nkernels %zu | max threads %s | reads/n^2 %.4f | "
              "writes/n^2 %.4f | max LB depth %zu\n",
              cell.kernel_calls,
              satutil::format_count(cell.max_threads).c_str(),
              double(cell.totals.element_reads) / double(n) / double(n),
              double(cell.totals.element_writes) / double(n) / double(n),
              cell.max_lookback_depth);
  return obs.finish() ? 0 : 1;
}

int mode_tune(const satutil::ArgParser& args) {
  const auto rows = static_cast<std::size_t>(args.get_int("rows"));
  const auto cols = static_cast<std::size_t>(args.get_int("cols"));
  const auto opts = sat::auto_tune(rows, cols);
  std::printf("best for %zux%zu: %s with W=%zu\n", rows, cols,
              satalgo::name_of(opts.algorithm), opts.tile_w);
  return 0;
}

int mode_trace(const satutil::ArgParser& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n"));
  const auto w = static_cast<std::size_t>(args.get_int("w"));
  gpusim::SimContext sim;
  sim.materialize = false;
  gpusim::GlobalBuffer<float> a(sim, n * n, "in"), b(sim, n * n, "out");
  satalgo::SatParams p;
  p.tile_w = w;
  p.record_trace = true;
  const auto run =
      satalgo::run_algorithm(sim, satalgo::Algorithm::kSkssLb, a, b, n, p);
  const satalgo::TileGrid grid(n, w);

  const std::string out = args.get("out");
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
    return 1;
  }
  os << "serial,tile_i,tile_j,start_us,finish_us,wait_us\n";
  for (const auto& t : run.reports[0].trace) {
    const auto [ti, tj] = grid.tile_of_serial(t.logical_block);
    os << t.logical_block << ',' << ti << ',' << tj << ',' << t.start_us
       << ',' << t.finish_us << ',' << t.wait_us << '\n';
  }
  std::printf("wrote %zu block records to %s (critical path %.1f us)\n",
              run.reports[0].trace.size(), out.c_str(),
              run.reports[0].critical_path_us);
  return 0;
}

int mode_verify(const satutil::ArgParser& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::vector<std::size_t> sizes = {256, 1024};
  const std::vector<std::size_t> widths = {32, 64, 128};
  std::size_t runs = 0;
  std::size_t failures = 0;
  for (satalgo::Algorithm algo : satalgo::all_sat_algorithms()) {
    for (std::size_t n : sizes) {
      for (std::size_t w : widths) {
        // Non-tiled algorithms ignore W; sweep them once per size.
        if (!satalgo::is_tiled(algo) && w != widths.front()) continue;
        gpusim::ProtocolChecker checker;
        gpusim::SimContext sim;
        sim.materialize = false;  // counters + protocol only: fast sweep
        sim.checker = &checker;
        gpusim::GlobalBuffer<float> a(sim, n * n, "verify.in");
        gpusim::GlobalBuffer<float> b(sim, n * n, "verify.out");
        satalgo::SatParams p;
        p.tile_w = w;
        p.seed = seed;
        ++runs;
        try {
          satalgo::run_algorithm(sim, algo, a, b, n, p);
          std::printf("ok   %-14s n=%-5zu W=%-4zu %s\n", satalgo::name_of(algo),
                      n, w, checker.summary().c_str());
        } catch (const gpusim::ProtocolError& e) {
          ++failures;
          std::printf("FAIL %-14s n=%-5zu W=%-4zu %s\n", satalgo::name_of(algo),
                      n, w, e.what());
        }
      }
    }
  }
  std::printf("%zu/%zu protocol-checked runs passed\n", runs - failures, runs);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  satutil::ArgParser args("satcli", "summed-area-table command-line tool");
  args.add("mode", "compute", "compute | cell | tune | trace | verify")
      .add("rows", "1024", "matrix rows")
      .add("cols", "1024", "matrix cols")
      .add("batch", "1",
           "compute mode: run this many same-shape images in one batched "
           "launch (CPU skss_lb pipelines them through one scheduler)")
      .add("n", "1024", "matrix side (cell/trace modes)")
      .add("algorithm", "skss_lb",
           "duplicate|2r2w|2r2w_opt|2r1w|1r1w|hybrid|skss|skss_lb")
      .add("w", "64", "tile width")
      .add("host-impl", "",
           "run on the CPU backend with this engine: "
           "sequential|simd|parallel|wavefront|skss_lb")
      .add("tile-width", "0",
           "host tile width W, 0 = engine default (with --host-impl)")
      .add("threads", "0",
           "host worker threads, 0 = hardware concurrency (with --host-impl)")
      .add("storage", "dense",
           "output storage mode (with --host-impl): dense | residual "
           "(tiled base+residual) | kahan (compensated f32 scans)")
      .add("seed", "1", "workload seed")
      .add("out", "trace.csv", "output file (trace mode)")
      .add_flag("check-protocol",
                "verify the soft-sync protocol during compute mode")
      .add_flag("metrics",
                "print run metrics (compute/cell modes): --metrics for a "
                "pretty table, --metrics=json for one JSON line")
      .add("trace-out", "",
           "write Chrome trace_events JSON of the run to this file "
           "(compute/cell modes; open in ui.perfetto.dev)");
  if (!args.parse(argc, argv)) return 1;

  const std::string mode = args.get("mode");
  if (mode == "compute") return mode_compute(args);
  if (mode == "cell") return mode_cell(args);
  if (mode == "tune") return mode_tune(args);
  if (mode == "trace") return mode_trace(args);
  if (mode == "verify") return mode_verify(args);
  std::fprintf(stderr, "unknown mode '%s'\n%s", mode.c_str(),
               args.usage().c_str());
  return 1;
}
