#!/usr/bin/env python3
"""satlint — the satlib concurrency-protocol linter (stdlib only).

The host look-back engine is correct only because every flag publish is a
release store paired with an acquire load and every look-back walk points at
a strictly smaller serial sigma.  Those invariants live in code review and in
comments — this tool makes them machine-checked.  It is deliberately
token/AST-lite (no libclang): the rules key on the project's own naming
discipline (status words contain "flag"/"status"/"state"), which is exactly
the discipline they enforce.

Rules
-----
  flag-store-ordering   stores / RMWs on flag-named std::atomic objects must
                        publish with memory_order_release (RMW: acq_rel) or
                        stronger; a relaxed flag store silently breaks the
                        flag-after-data protocol on weakly ordered hardware.
  flag-load-ordering    cross-thread loads of flag-named atomics must acquire
                        (or stronger) so the data the flag guards is visible.
  atomic-whitelist      raw std::atomic use is confined to the audited files
                        (ATOMIC_WHITELIST below); new lock-free code must
                        either live there or carry an explicit allow with a
                        rationale.
  volatile-sync         `volatile` is not a synchronization primitive in
                        C++11+; outside `asm volatile` it is rejected.
  unknown-metric        obs counter/gauge/histogram name literals must appear
                        in the docs/observability.md catalogue table, so the
                        catalogue can never silently go stale.
  sigma-direction       the predecessor-index lambda of a
                        `lookback_accumulate(...)` call must step toward
                        smaller indices (subtraction only): a walk toward
                        larger sigma can wait on a tile that is claimed
                        *after* the waiter, which deadlocks a finite pool.
  memory-order-explicit bare `load()` / `store()` (defaulted seq_cst) on the
                        audited flag atomics is an error: every access must
                        name its order, so the release/acquire pairing stays
                        visible in the code and auditable by the rules above
                        (seq_cst-by-omission also hides real cost on weakly
                        ordered targets).

Suppression
-----------
A violation is suppressed by an inline directive on the same line or on a
directly preceding comment line:

    // satlint: allow(flag-store-ordering) -- init store; no thread yet
    flags_[i].store(0, std::memory_order_relaxed);

Every allow must carry a human-readable rationale after the directive; the
directive without one is itself reported (allow-without-reason).

Fixtures / self-test
--------------------
`--self-test` lints every file under tools/satlint/fixtures/ and requires the
set of fired rules to match the file's `// satlint-expect: <rule>` directives
exactly (deliberately-broken corpus; see fixtures/README.md).

Usage
-----
    tools/satlint/satlint.py [--root DIR] [--json FILE] [files...]
    tools/satlint/satlint.py --root DIR --self-test

With no explicit files, lints src/**/*.{hpp,cpp} under the root.  Exit code:
0 clean, 1 violations found, 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Callable, NamedTuple

# Files (repo-relative) allowed to use std::atomic directly.  Everything else
# must build on these audited primitives (StatusFlags, ThreadPool, SpinBackoff,
# obs counters) or carry an inline allow with a rationale.
ATOMIC_WHITELIST = {
    "src/host/lookback.hpp",
    "src/host/thread_pool.hpp",
    "src/host/thread_pool.cpp",
    "src/util/backoff.hpp",
    "src/gpusim/flags.hpp",
    "src/obs/registry.hpp",
}

# Identifier substrings that mark an atomic as a protocol status word.
FLAG_NAME_TOKENS = ("flag", "status", "state")

RULES = {
    "flag-store-ordering": "flag store must be memory_order_release or stronger",
    "flag-load-ordering": "flag load must be memory_order_acquire or stronger",
    "atomic-whitelist": "std::atomic outside the audited whitelist",
    "volatile-sync": "volatile used where synchronization is required",
    "unknown-metric": "metric name missing from docs/observability.md catalogue",
    "sigma-direction": "look-back walk must move toward smaller sigma",
    "memory-order-explicit": "flag atomic access must name its memory order",
    "allow-without-reason": "satlint allow directive carries no rationale",
}

STORE_OK = {"release", "seq_cst", "acq_rel"}
LOAD_OK = {"acquire", "seq_cst"}
RMW_OK = {"acq_rel", "seq_cst", "release"}

ATOMIC_OP = re.compile(
    r"\b(?P<obj>[A-Za-z_]\w*)\s*(?:\[[^\[\]]*\])?\s*(?:\.|->)\s*"
    r"(?P<op>store|load|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)
MEMORY_ORDER = re.compile(r"memory_order(?:::|_)(\w+)")
METRIC_CALL = re.compile(r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]+)\"")
ALLOW_DIRECTIVE = re.compile(r"satlint:\s*allow\(([^)]*)\)\s*(.*)")
EXPECT_DIRECTIVE = re.compile(r"satlint-expect:\s*([\w-]+)")
CATALOGUE_ROW = re.compile(r"^\|\s*`([A-Za-z0-9_.]+)`\s*\|")
LAMBDA = re.compile(r"\[[^\[\]]*\]\s*\(([^()]*)\)\s*(?:->\s*[\w:<>]+\s*)?\{([^{}]*)\}")


class Violation(NamedTuple):
    path: str  # repo-relative
    line: int  # 1-based
    rule: str
    message: str


class SourceFile:
    """One sanitized translation unit.

    `code` strips comments AND string/char literal contents; `keepstr` strips
    only comments (the metric rule needs the name literals).  Both preserve
    line structure so diagnostics stay at real line numbers.
    """

    def __init__(self, path: Path, relpath: str, text: str):
        self.path = path
        self.relpath = relpath
        self.code, self.keepstr, comments = _sanitize(text)
        self.allows: dict[int, dict[str, str]] = {}  # line -> rule -> reason
        self.expects: set[str] = set()
        self.bare_allows: list[int] = []  # allow() with no rationale
        self._bind_directives(comments)

    def _bind_directives(self, comments: list[tuple[int, str]]) -> None:
        for lineno, text in comments:
            for m in EXPECT_DIRECTIVE.finditer(text):
                self.expects.add(m.group(1))
            m = ALLOW_DIRECTIVE.search(text)
            if m is None:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            reason = m.group(2).strip().lstrip("-—: ").strip()
            if not reason:
                self.bare_allows.append(lineno)
            # A trailing comment binds to its own line; a comment-only line
            # binds to the first following line that carries code (the
            # rationale may wrap over several comment lines in between).
            target = lineno
            if not self.code[lineno - 1].strip():
                for nxt in range(lineno + 1, min(lineno + 9, len(self.code) + 1)):
                    if self.code[nxt - 1].strip():
                        target = nxt
                        break
            slot = self.allows.setdefault(target, {})
            for r in rules:
                slot[r] = reason

    def window(self, lineno: int, span: int = 14) -> str:
        """Physical lines joined into one string for multi-line calls."""
        return " ".join(self.code[lineno - 1 : lineno - 1 + span])

    def allowed(self, lineno: int, rule: str) -> bool:
        return rule in self.allows.get(lineno, {})


def _sanitize(text: str) -> tuple[list[str], list[str], list[tuple[int, str]]]:
    code: list[str] = []
    keepstr: list[str] = []
    comments: list[tuple[int, str]] = []
    state = "normal"  # normal | line | block | dq | sq
    cur_code: list[str] = []
    cur_keep: list[str] = []
    cur_comment: list[str] = []
    lineno = 1
    i = 0
    n = len(text)

    def flush_line() -> None:
        nonlocal cur_code, cur_keep, cur_comment
        code.append("".join(cur_code))
        keepstr.append("".join(cur_keep))
        if cur_comment:
            comments.append((lineno, "".join(cur_comment)))
        cur_code, cur_keep, cur_comment = [], [], []

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            flush_line()
            lineno += 1
            if state == "line":
                state = "normal"
            i += 1
            continue
        if state == "normal":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "dq"
                cur_code.append('"')
                cur_keep.append('"')
                i += 1
                continue
            if c == "'":
                state = "sq"
                cur_code.append("'")
                cur_keep.append("'")
                i += 1
                continue
            cur_code.append(c)
            cur_keep.append(c)
        elif state == "line":
            cur_comment.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "normal"
                i += 2
                continue
            cur_comment.append(c)
        elif state in ("dq", "sq"):
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                cur_code.append(" ")
                cur_keep.append(text[i : i + 2])
                i += 2
                continue
            if c == quote:
                state = "normal"
                cur_code.append(quote)
                cur_keep.append(quote)
            else:
                cur_code.append(" ")
                cur_keep.append(c)
        i += 1
    flush_line()
    return code, keepstr, comments


def _call_args(window: str, start: int) -> str:
    """Text of a call's argument list starting at its opening paren."""
    depth = 0
    for j in range(start, len(window)):
        if window[j] == "(":
            depth += 1
        elif window[j] == ")":
            depth -= 1
            if depth == 0:
                return window[start : j + 1]
    return window[start:]


def check_atomic_ops(src: SourceFile) -> list[Violation]:
    out: list[Violation] = []
    for lineno, line in enumerate(src.code, start=1):
        if not line.strip():
            continue
        window = src.window(lineno)
        for m in ATOMIC_OP.finditer(window):
            if m.start() >= len(line):
                continue  # belongs to a later physical line
            obj = m.group("obj").lower()
            if not any(tok in obj for tok in FLAG_NAME_TOKENS):
                continue
            op = m.group("op")
            args = _call_args(window, m.end() - 1)
            orders = MEMORY_ORDER.findall(args)
            if not orders:
                out.append(Violation(
                    src.relpath, lineno, "memory-order-explicit",
                    f"{op}() on flag '{m.group('obj')}' names no memory "
                    f"order (defaulted seq_cst); the flag protocol's "
                    f"release/acquire pairing must be explicit at every "
                    f"access so the ordering rules can audit it"))
                continue
            if op == "load":
                bad = [o for o in orders if o not in LOAD_OK]
                if bad:
                    out.append(Violation(
                        src.relpath, lineno, "flag-load-ordering",
                        f"load of flag '{m.group('obj')}' uses "
                        f"memory_order_{bad[0]}; a cross-thread flag read "
                        f"must acquire (or stronger) so the data it guards "
                        f"is visible"))
            elif op == "store":
                bad = [o for o in orders if o not in STORE_OK]
                if bad:
                    out.append(Violation(
                        src.relpath, lineno, "flag-store-ordering",
                        f"store to flag '{m.group('obj')}' uses "
                        f"memory_order_{bad[0]}; a flag publish must release "
                        f"(or stronger) so it cannot pass the data it "
                        f"guards"))
            else:  # RMW / exchange
                bad = [o for o in orders if o not in RMW_OK]
                if bad:
                    out.append(Violation(
                        src.relpath, lineno, "flag-store-ordering",
                        f"read-modify-write on flag '{m.group('obj')}' uses "
                        f"memory_order_{bad[0]}; flag RMWs must be acq_rel "
                        f"(or stronger)"))
    return out


def check_atomic_whitelist(src: SourceFile) -> list[Violation]:
    if src.relpath in ATOMIC_WHITELIST:
        return []
    out = []
    for lineno, line in enumerate(src.code, start=1):
        if re.search(r"\bstd\s*::\s*atomic\b", line):
            out.append(Violation(
                src.relpath, lineno, "atomic-whitelist",
                "raw std::atomic outside the audited whitelist "
                "(lookback/thread_pool/backoff/flags/registry); build on "
                "StatusFlags or the pool, move the code into an audited "
                "file, or add a satlint allow with a rationale"))
    return out


def check_volatile(src: SourceFile) -> list[Violation]:
    out = []
    for lineno, line in enumerate(src.code, start=1):
        if re.search(r"\bvolatile\b", line) and not re.search(
                r"\basm\b|__asm__", line):
            out.append(Violation(
                src.relpath, lineno, "volatile-sync",
                "volatile is not a synchronization primitive in C++ "
                "(no ordering, no atomicity); use std::atomic with "
                "explicit memory orders"))
    return out


def check_metrics(src: SourceFile, catalogue: set[str]) -> list[Violation]:
    out = []
    for lineno, line in enumerate(src.keepstr, start=1):
        window = " ".join(src.keepstr[lineno - 1 : lineno + 2])
        for m in METRIC_CALL.finditer(window):
            if m.start() >= len(line):
                continue
            name = m.group(1)
            if name not in catalogue:
                out.append(Violation(
                    src.relpath, lineno, "unknown-metric",
                    f"metric '{name}' is not in the docs/observability.md "
                    f"catalogue table; add a catalogue row (name, type, "
                    f"meaning) in the same change"))
    return out


def check_sigma_direction(src: SourceFile) -> list[Violation]:
    out = []
    for lineno, line in enumerate(src.code, start=1):
        col = line.find("lookback_accumulate")
        if col < 0:
            continue
        window = src.window(lineno, span=16)
        call = _call_args(window, window.find("(", col))
        lam = LAMBDA.search(call)
        if lam is None:
            continue
        params = [p for p in lam.group(1).split(",") if p.strip()]
        if not params:
            continue
        step = params[-1].split()[-1].lstrip("&*")
        body = lam.group(2)
        if re.search(rf"\+\s*{re.escape(step)}\b|\b{re.escape(step)}\s*\+", body):
            out.append(Violation(
                src.relpath, lineno, "sigma-direction",
                f"predecessor index adds the walk step '{step}': the walk "
                f"moves toward *larger* sigma, which can wait on a tile "
                f"claimed after the waiter and deadlock a finite pool; "
                f"predecessor indices must subtract the step"))
    return out


def load_catalogue(root: Path) -> set[str]:
    doc = root / "docs" / "observability.md"
    if not doc.is_file():
        raise FileNotFoundError(f"metric catalogue not found: {doc}")
    names = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        m = CATALOGUE_ROW.match(line)
        if m:
            names.add(m.group(1))
    if not names:
        raise ValueError(f"no catalogue rows parsed from {doc}")
    return names


def lint_file(path: Path, root: Path, catalogue: set[str]
              ) -> tuple[list[Violation], list[tuple[Violation, str]]]:
    """Returns (reported, suppressed) for one file; each suppressed entry
    pairs the violation with the rationale its allow directive stated."""
    relpath = path.resolve().relative_to(root.resolve()).as_posix()
    src = SourceFile(path, relpath, path.read_text(encoding="utf-8"))
    found: list[Violation] = []
    found += check_atomic_ops(src)
    found += check_atomic_whitelist(src)
    found += check_volatile(src)
    found += check_metrics(src, catalogue)
    found += check_sigma_direction(src)
    reported = [v for v in found if not src.allowed(v.line, v.rule)]
    suppressed = [(v, src.allows[v.line][v.rule]) for v in found
                  if src.allowed(v.line, v.rule)]
    for lineno in src.bare_allows:
        reported.append(Violation(
            relpath, lineno, "allow-without-reason",
            "satlint allow directives must state why, e.g. "
            "// satlint: allow(rule) -- reason"))
    reported.sort(key=lambda v: (v.path, v.line, v.rule))
    return reported, suppressed


def default_targets(root: Path) -> list[Path]:
    return sorted(p for p in (root / "src").rglob("*")
                  if p.suffix in (".hpp", ".cpp", ".h") and p.is_file())


def self_test(root: Path, catalogue: set[str]) -> int:
    fixtures = sorted((root / "tools" / "satlint" / "fixtures").glob("*.[ch]pp"))
    if not fixtures:
        print("satlint --self-test: no fixtures found", file=sys.stderr)
        return 2
    failures = 0
    for f in fixtures:
        relpath = f.resolve().relative_to(root.resolve()).as_posix()
        src = SourceFile(f, relpath, f.read_text(encoding="utf-8"))
        reported, suppressed = lint_file(f, root, catalogue)
        fired = {v.rule for v in reported}
        ok = fired == src.expects and len(reported) > 0
        status = "ok" if ok else "FAIL"
        print(f"self-test {status}: {relpath}: fired={sorted(fired)} "
              f"expected={sorted(src.expects)} "
              f"(+{len(suppressed)} suppressed)")
        if not ok:
            failures += 1
            for v in reported:
                print(f"  {v.path}:{v.line}: [{v.rule}] {v.message}",
                      file=sys.stderr)
    print(f"satlint --self-test: {len(fixtures)} fixtures, "
          f"{failures} failures")
    return 0 if failures == 0 else 1


def main() -> int:
    ap = argparse.ArgumentParser(prog="satlint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".", help="repo root (default: cwd)")
    ap.add_argument("--json", metavar="FILE",
                    help="write a machine-readable report ('-' for stdout)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the fixture corpus against its expectations")
    ap.add_argument("files", nargs="*",
                    help="explicit files (default: src/** under the root)")
    args = ap.parse_args()

    root = Path(args.root).resolve()
    try:
        catalogue = load_catalogue(root)
    except (FileNotFoundError, ValueError) as e:
        print(f"satlint: {e}", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root, catalogue)

    targets = [Path(f) for f in args.files] or default_targets(root)
    all_reported: list[Violation] = []
    all_suppressed: list[tuple[Violation, str]] = []
    for t in targets:
        if not t.is_file():
            print(f"satlint: no such file: {t}", file=sys.stderr)
            return 2
        reported, suppressed = lint_file(t, root, catalogue)
        all_reported += reported
        all_suppressed += suppressed

    # With --json -, stdout is the machine-readable report; keep the human
    # lines on stderr so the payload stays parseable.
    human = sys.stderr if args.json == "-" else sys.stdout
    for v in all_reported:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}", file=human)

    if args.json:
        # Version 2: every diagnostic carries its rule id, and every
        # suppressed entry carries the rationale its allow directive stated
        # (so suppression audits don't have to re-read the source).
        report = {
            "tool": "satlint",
            "version": 2,
            "root": str(root),
            "files_scanned": len(targets),
            "violations": [v._asdict() for v in all_reported],
            "suppressed": [{**v._asdict(), "reason": reason}
                           for v, reason in all_suppressed],
        }
        payload = json.dumps(report, indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")

    print(f"satlint: {len(targets)} files, {len(all_reported)} violations "
          f"({len(all_suppressed)} suppressed by allow directives)",
          file=human)
    return 1 if all_reported else 0


if __name__ == "__main__":
    sys.exit(main())
