// satlint fixture: an allow directive with no rationale.  The suppression
// still applies (the relaxed store is not reported), but the directive
// itself is a violation — every allow must say *why*, or the whitelist
// rots into noise.
//
// satlint-expect: allow-without-reason
// satlint-expect: atomic-whitelist
#include <atomic>
#include <cstdint>

struct LazyAllow {
  void publish(std::uint8_t state) noexcept {
    // satlint: allow(flag-store-ordering)
    flag_.store(state, std::memory_order_relaxed);
  }

  std::atomic<std::uint8_t> flag_{0};
};
