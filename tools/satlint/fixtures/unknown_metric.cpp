// satlint fixture: an obs metric resolved by a name that is not in the
// docs/observability.md catalogue table.  Every shipped name must have a
// catalogue row (name, type, meaning) in the same change, so the dashboard
// reference can never silently go stale.
//
// satlint-expect: unknown-metric

namespace obs {
class Counter;
class Registry {
 public:
  Counter& counter(const char* name);
};
}  // namespace obs

void instrument(obs::Registry& reg) {
  // BUG: "host.lookback.bogus_total" has no catalogue row.
  reg.counter("host.lookback.bogus_total");
}
