// satlint fixture: a raw std::atomic in a file outside the audited
// whitelist.  The orderings here are even correct — the violation is the
// location: lock-free code must live in the audited files (or carry an
// allow with a rationale) so the concurrency surface stays reviewable.
//
// satlint-expect: atomic-whitelist
#include <atomic>
#include <cstddef>

class RogueQueue {
 public:
  std::size_t claim() noexcept {
    return cursor_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> cursor_{0};
};
