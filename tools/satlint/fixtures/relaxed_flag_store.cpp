// satlint fixture: a flag publish with memory_order_relaxed.  On x86 this
// passes every runtime test (TSO hides it); on ARM the waiter can observe
// the flag before the data it guards.  satlint must reject it statically.
//
// satlint-expect: flag-store-ordering
// satlint-expect: atomic-whitelist
#include <atomic>
#include <cstdint>

struct BrokenStatusFlags {
  void publish(std::size_t idx, std::uint8_t state) noexcept {
    // BUG: the release is missing — this store can be reordered before the
    // stores of the data the flag publishes.
    flags_[idx].store(state, std::memory_order_relaxed);
  }

  std::atomic<std::uint8_t> flags_[64];
};
