// satlint fixture: a cross-thread flag wait that loads with
// memory_order_relaxed.  The waiter may leave the loop having synchronized
// with nothing: the guarded tile data can still be invisible.
//
// satlint-expect: flag-load-ordering
// satlint-expect: atomic-whitelist
#include <atomic>
#include <cstdint>

struct BrokenWaiter {
  std::uint8_t wait_at_least(std::size_t idx, std::uint8_t want) noexcept {
    std::uint8_t s;
    do {
      // BUG: relaxed load — observing the flag does not acquire the data.
      s = status_[idx].load(std::memory_order_relaxed);
    } while (s < want);
    return s;
  }

  std::atomic<std::uint8_t> status_[64];
};
