// satlint fixture: the suppression mechanism.  The relaxed flag store and
// the out-of-whitelist atomic below carry allow directives with rationales
// and must NOT be reported; the volatile further down has no allow and
// must still fire.  The self-test checks the fired set matches exactly.
//
// satlint-expect: volatile-sync
#include <atomic>
#include <cstdint>

struct InitOnlyFlags {
  explicit InitOnlyFlags(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      // satlint: allow(flag-store-ordering) -- constructor init before any
      // thread can observe the array; release would order nothing.
      flags_[i].store(0, std::memory_order_relaxed);
  }

  // satlint: allow(atomic-whitelist) -- fixture stand-in for an audited
  // status array; real code would live in src/host/lookback.hpp.
  std::atomic<std::uint8_t> flags_[64];
};

volatile int done = 0;  // BUG: still reported — no allow, no rationale.
