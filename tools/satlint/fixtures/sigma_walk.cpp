// satlint fixture: a look-back walk whose predecessor lambda steps toward
// *larger* indices.  Every look-back dependency must point at a strictly
// smaller serial sigma — claimed-before implies published-eventually, which
// is the whole deadlock-freedom argument on a finite pool.  Walking forward
// waits on tiles nobody has claimed yet.
//
// satlint-expect: sigma-direction
#include <cstddef>
#include <cstdint>

namespace sathost {
struct StatusFlags;
struct LookbackObs;
template <class T, class PredIdx>
std::size_t lookback_accumulate(const StatusFlags&, const T*, const T*,
                                std::size_t, std::size_t, std::size_t, T*,
                                std::uint8_t, std::uint8_t,
                                const LookbackObs&, PredIdx);
}  // namespace sathost

void broken_walk(const sathost::StatusFlags& status, const float* local,
                 const float* global, std::size_t w, std::size_t tj,
                 std::size_t p, float* out, const sathost::LookbackObs& obs,
                 std::size_t ti, std::size_t cols_tiles) {
  // BUG: `tj + 1 + k` walks right, toward tiles with larger sigma.
  sathost::lookback_accumulate(
      status, local, global, w, tj, p, out, 1, 2, obs,
      [=](std::size_t k) { return ti * cols_tiles + (tj + 1 + k); });
}
