// Broken on purpose: bare load()/store() on a flag atomic. Both default to
// seq_cst, which hides the release/acquire pairing from the ordering rules
// (and hides real fence cost on weakly ordered targets) — the
// memory-order-explicit rule requires every flag access to name its order.
// satlint-expect: memory-order-explicit
// satlint-expect: atomic-whitelist
#include <atomic>

namespace fixture {

struct TileStatus {
  std::atomic<unsigned char> flag_slot{0};

  void publish_terminal() {
    flag_slot.store(4);  // defaulted seq_cst: the publish order is invisible
  }

  [[nodiscard]] unsigned char peek() const {
    return flag_slot.load();  // defaulted seq_cst: ditto for the observe
  }
};

}  // namespace fixture
