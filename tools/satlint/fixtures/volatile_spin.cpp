// satlint fixture: volatile used as a synchronization primitive.  volatile
// orders nothing and is not atomic; this spin "works" only by accident of
// compiler and ISA.  (An `asm volatile` clobber — as in util/backoff.hpp —
// is fine and must not fire.)
//
// satlint-expect: volatile-sync

namespace {

volatile bool ready = false;  // BUG: not a flag, just a compiler pessimization

int consume(const int* data) {
  while (!ready) {
  }
  return data[0];
}

}  // namespace
