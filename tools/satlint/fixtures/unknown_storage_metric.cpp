// satlint fixture: the host.storage.* family is matched by exact catalogue
// row, not by prefix — adding the storage counters to the catalogue must not
// blanket-allow arbitrary names under the prefix.  A misspelled or
// undocumented storage metric still fires unknown-metric.
//
// satlint-expect: unknown-metric

namespace obs {
class Counter;
class Registry {
 public:
  Counter& counter(const char* name);
};
}  // namespace obs

void instrument(obs::Registry& reg) {
  // OK: catalogued rows (docs/observability.md).
  reg.counter("host.storage.residual_bytes");
  reg.counter("host.storage.dense_bytes");
  reg.counter("host.storage.overflow_tiles");
  // BUG: "host.storage.saved_bytes" has no catalogue row.
  reg.counter("host.storage.saved_bytes");
}
