#!/usr/bin/env python3
"""Validate satlint --json reports against tools/satlint/report_schema.json.

Two layers keep the report contract honest (stdlib only — no jsonschema
dependency, so the validator implements the small schema subset the schema
file actually uses: type, required, properties, additionalProperties,
items, enum, minimum, minLength, $ref into #/definitions):

  * `--report FILE` validates one existing report ('-' for stdin).
  * with no --report, the driver mode runs satlint itself over the fixture
    corpus (which must exit 1 — it is a deliberately-broken corpus),
    validates the emitted report, and then checks the semantic contract the
    schema cannot express: the corpus yields at least one violation, at
    least one suppressed entry with a non-empty rationale, and every
    suppressed entry with an *empty* rationale is matched by an
    allow-without-reason diagnostic in the same file (a bare allow still
    suppresses, but must be reported as bare).
  * `--self-test` feeds the validator known-bad documents and requires each
    to be rejected — the test suite for the validator itself.

Exit code: 0 valid, 1 invalid, 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent


def _resolve_ref(schema: dict, root: dict) -> dict:
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref: {ref}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(doc, schema: dict, root: dict, where: str = "$") -> list[str]:
    """Returns a list of human-readable schema violations (empty = valid)."""
    errs: list[str] = []
    schema = _resolve_ref(schema, root)

    want = schema.get("type")
    if want is not None:
        pytype = _TYPES[want]
        # bool is an int subclass in Python; don't let true pass as integer.
        ok = isinstance(doc, pytype) and not (
            want in ("integer", "number") and isinstance(doc, bool))
        if not ok:
            errs.append(f"{where}: expected {want}, "
                        f"got {type(doc).__name__}")
            return errs

    if "enum" in schema and doc not in schema["enum"]:
        errs.append(f"{where}: {doc!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(doc, (int, float)) \
            and doc < schema["minimum"]:
        errs.append(f"{where}: {doc} < minimum {schema['minimum']}")
    if "minLength" in schema and isinstance(doc, str) \
            and len(doc) < schema["minLength"]:
        errs.append(f"{where}: string shorter than {schema['minLength']}")

    if isinstance(doc, dict):
        for key in schema.get("required", []):
            if key not in doc:
                errs.append(f"{where}: missing required key '{key}'")
        props = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for key in doc:
                if key not in props:
                    errs.append(f"{where}: unexpected key '{key}'")
        for key, sub in props.items():
            if key in doc:
                errs.extend(validate(doc[key], sub, root, f"{where}.{key}"))
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            errs.extend(validate(item, schema["items"], root,
                                 f"{where}[{i}]"))
    return errs


def check_semantics(report: dict) -> list[str]:
    """Contract checks the schema language cannot express."""
    errs: list[str] = []
    if not report["violations"]:
        errs.append("fixture corpus produced no violations at all")
    reasoned = [s for s in report["suppressed"] if s["reason"]]
    if not reasoned:
        errs.append("no suppressed entry carries a rationale "
                    "(suppressed_init.cpp should provide two)")
    bare_files = {v["path"] for v in report["violations"]
                  if v["rule"] == "allow-without-reason"}
    for s in report["suppressed"]:
        if not s["reason"] and s["path"] not in bare_files:
            errs.append(f"{s['path']}:{s['line']}: suppressed with empty "
                        f"reason but no allow-without-reason diagnostic "
                        f"in that file")
    return errs


def run_driver(root: Path, schema: dict) -> int:
    fixtures = sorted((root / "tools" / "satlint" / "fixtures").glob("*.cpp"))
    if not fixtures:
        print("validate_report: no fixtures found", file=sys.stderr)
        return 2
    cmd = [sys.executable, str(root / "tools" / "satlint" / "satlint.py"),
           "--root", str(root), "--json", "-"] + [str(f) for f in fixtures]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 1:
        print(f"validate_report: satlint on the broken corpus exited "
              f"{proc.returncode}, expected 1\n{proc.stderr}",
              file=sys.stderr)
        return 1
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"validate_report: report is not JSON: {e}", file=sys.stderr)
        return 1
    errs = validate(report, schema, schema) + check_semantics(report)
    for e in errs:
        print(f"validate_report: {e}", file=sys.stderr)
    print(f"validate_report: corpus report: "
          f"{len(report.get('violations', []))} violations, "
          f"{len(report.get('suppressed', []))} suppressed, "
          f"{len(errs)} schema/contract errors")
    return 1 if errs else 0


def self_test(schema: dict) -> int:
    good = {
        "tool": "satlint", "version": 2, "root": "/repo",
        "files_scanned": 1,
        "violations": [{"path": "a.cpp", "line": 3,
                        "rule": "volatile-sync", "message": "m"}],
        "suppressed": [{"path": "a.cpp", "line": 9,
                        "rule": "atomic-whitelist", "message": "m",
                        "reason": "audited"}],
    }
    import copy
    bads = []
    b = copy.deepcopy(good); b["version"] = 1
    bads.append(("stale version", b))
    b = copy.deepcopy(good); del b["suppressed"]
    bads.append(("missing suppressed", b))
    b = copy.deepcopy(good); b["violations"][0]["rule"] = "no-such-rule"
    bads.append(("unknown rule id", b))
    b = copy.deepcopy(good); del b["violations"][0]["rule"]
    bads.append(("diagnostic without rule", b))
    b = copy.deepcopy(good); del b["suppressed"][0]["reason"]
    bads.append(("suppressed without reason", b))
    b = copy.deepcopy(good); b["suppressed"][0]["line"] = 0
    bads.append(("line below 1", b))
    b = copy.deepcopy(good); b["violations"][0]["extra"] = True
    bads.append(("unexpected key", b))

    failures = 0
    if validate(good, schema, schema):
        print("self-test FAIL: the known-good document was rejected")
        failures += 1
    for label, bad in bads:
        errs = validate(bad, schema, schema)
        status = "ok" if errs else "FAIL"
        if not errs:
            failures += 1
        print(f"self-test {status}: {label} "
              f"{'rejected' if errs else 'was NOT rejected'}")
    print(f"validate_report --self-test: {len(bads)} bad documents, "
          f"{failures} failures")
    return 0 if failures == 0 else 1


def main() -> int:
    ap = argparse.ArgumentParser(prog="validate_report", description=__doc__)
    ap.add_argument("--root", default=str(HERE.parent.parent),
                    help="repo root (default: two levels up)")
    ap.add_argument("--schema", default=str(HERE / "report_schema.json"))
    ap.add_argument("--report", metavar="FILE",
                    help="validate this report instead of running satlint")
    ap.add_argument("--self-test", action="store_true",
                    help="require known-bad documents to be rejected")
    args = ap.parse_args()

    schema = json.loads(Path(args.schema).read_text(encoding="utf-8"))
    if args.self_test:
        return self_test(schema)
    if args.report:
        text = sys.stdin.read() if args.report == "-" else \
            Path(args.report).read_text(encoding="utf-8")
        errs = validate(json.loads(text), schema, schema)
        for e in errs:
            print(f"validate_report: {e}", file=sys.stderr)
        print(f"validate_report: {len(errs)} schema errors")
        return 1 if errs else 0
    return run_driver(Path(args.root).resolve(), schema)


if __name__ == "__main__":
    sys.exit(main())
