#!/usr/bin/env python3
"""Intra-repo markdown link checker (stdlib only; CI `docs-check` job).

Scans the repo's markdown (README.md, DESIGN.md, EXPERIMENTS.md, docs/,
tools/ — recursively, for pages like the satlint fixture README — and any
other tracked *.md at the top level) for inline links and validates every
*intra-repo* target:

  * relative file links must point at an existing file;
  * `#fragment` parts (own-page or cross-page) must match a heading
    anchor, computed the GitHub way (lowercase, strip punctuation,
    spaces to dashes);
  * every docs/*.md and tools/**/*.md file must be reachable from
    README.md's link graph.

External links (http/https/mailto) are not fetched — CI must not depend
on the network. Exit status is the number of broken links.

Usage: tools/check_docs_links.py [repo_root] [--require PATH]...

`--require` (repeatable) names docs that must exist AND be reachable from
README.md — CI pins the documentation a PR promises (e.g. docs/satd.md)
so a later rename or de-linking fails loudly instead of orphaning it.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
IMAGE_LINK = re.compile(r"\!\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(?P<title>.+?)\s*$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def github_anchor(title: str) -> str:
    """GitHub's heading-to-anchor rule: lowercase, drop everything but
    word characters, spaces and dashes, then spaces to dashes."""
    # Inline code/links inside headings contribute their text only.
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)
    title = title.replace("`", "")
    title = title.strip().lower()
    title = re.sub(r"[^\w\- ]", "", title, flags=re.UNICODE)
    return title.replace(" ", "-")


def markdown_files(root: Path) -> list[Path]:
    files = (
        sorted(root.glob("*.md"))
        + sorted((root / "docs").glob("*.md"))
        + sorted((root / "tools").rglob("*.md"))
    )
    return [f for f in files if f.is_file()]


def collect_anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if not m:
            continue
        a = github_anchor(m.group("title"))
        n = seen.get(a, 0)
        seen[a] = n + 1
        anchors.add(a if n == 0 else f"{a}-{n}")
    return anchors


def iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for rx in (INLINE_LINK, IMAGE_LINK):
            for m in rx.finditer(line):
                yield lineno, m.group("target")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Intra-repo markdown link checker."
    )
    parser.add_argument("root", nargs="?", default=".")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PATH",
        help="repo-relative doc that must exist and be README-reachable "
        "(repeatable)",
    )
    args = parser.parse_args()
    root = Path(args.root).resolve()
    files = markdown_files(root)
    if not files:
        print(f"check_docs_links: no markdown under {root}", file=sys.stderr)
        return 1

    anchors = {f: collect_anchors(f) for f in files}
    errors: list[str] = []
    linked: set[Path] = set()

    for f in files:
        for lineno, target in iter_links(f):
            where = f"{f.relative_to(root)}:{lineno}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # external: presence-only policy, never fetched
            if target.startswith("#"):
                if target[1:] not in anchors[f]:
                    errors.append(f"{where}: no heading for '{target}'")
                continue
            path_part, _, frag = target.partition("#")
            dest = (f.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{where}: missing file '{path_part}'")
                continue
            if dest.suffix == ".md" and dest in anchors:
                linked.add(dest)
                if frag and frag not in anchors[dest]:
                    errors.append(
                        f"{where}: no heading '#{frag}' in '{path_part}'"
                    )

    # Reachability: every docs/*.md and tools/**/*.md must be linked from
    # the README graph (directly or through another reachable page) — a doc
    # nobody can navigate to is as good as deleted.
    readme = root / "README.md"
    reachable: set[Path] = set()
    if readme.exists():
        frontier = [readme]
        while frontier:
            f = frontier.pop()
            if f in reachable or f not in anchors:
                continue
            reachable.add(f)
            for _, target in iter_links(f):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                dest = (f.parent / target.partition("#")[0]).resolve()
                if dest.suffix == ".md" and dest.exists():
                    frontier.append(dest)
        tools_dir = root / "tools"
        for f in files:
            covered = f.parent == root / "docs" or tools_dir in f.parents
            if covered and f not in reachable:
                errors.append(
                    f"{f.relative_to(root)}: not reachable from README.md"
                )

    for req in args.require:
        dest = (root / req).resolve()
        if not dest.exists():
            errors.append(f"--require {req}: file does not exist")
        elif dest not in reachable:
            errors.append(f"--require {req}: not reachable from README.md")

    for e in errors:
        print(e, file=sys.stderr)
    n_links = sum(1 for f in files for _ in iter_links(f))
    print(
        f"check_docs_links: {len(files)} files, {n_links} links, "
        f"{len(errors)} broken"
    )
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
