// Regenerates the repository's perf ledger:
//
//   ./build/tools/run_benches            # full run, writes to repo root
//   ./build/tools/run_benches --smoke    # small sizes, CI-friendly
//
// Emits BENCH_host_sat.json (host SAT implementations, Melem/s and ns/elem)
// and BENCH_sim.json (simulator count-only throughput on the Table III
// workload) into --out-dir. Dependency-free: uses bench/bench_json.hpp, not
// google-benchmark, so it builds even with SATLIB_BUILD_BENCHES=OFF.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/matrix.hpp"
#include "obs/registry.hpp"
#include "host/sat_cpu.hpp"
#include "host/sat_parallel.hpp"
#include "host/sat_residual.hpp"
#include "host/sat_simd.hpp"
#include "host/sat_skss_lb.hpp"
#include "host/sat_wavefront.hpp"
#include "host/thread_pool.hpp"
#include "model/table3.hpp"
#include "tools/satd/client.hpp"
#include "tools/satd/server.hpp"
#include "util/argparse.hpp"

namespace {

using satbench::Record;

int iterations_for(std::size_t n, bool smoke) {
  // Smoke rows at n <= 1024 use the SAME repeat count as the committed
  // ledger: the normalized CI gate compares a smoke row's best-of against
  // the full ledger's best-of, and E[min of 3] > E[min of 9] — comparing
  // different repeat counts biases the fast rows' ratios by 10-30% on a
  // 1-core box, which is bigger than the 10% gate itself. Only the sizes
  // smoke never runs keep a reduced count.
  if (smoke) return n >= 4096 ? 3 : 9;
  // Best-of over enough repeats that a noisy neighbour on a shared box does
  // not end up in the committed ledger.
  return n >= 4096 ? 5 : 9;
}

template <class Fn>
Record time_host(const std::string& impl, std::size_t n, bool smoke, Fn&& fn,
                 obs::Registry* reg = nullptr) {
  Record r;
  r.name = "host_sat/" + impl + "/" + std::to_string(n);
  r.impl = impl;
  r.dtype = "f32";
  r.n = n;
  r.elems = n * n;
  r.iterations = iterations_for(n, smoke);
  r.wall_ms = satbench::time_best_ms(r.iterations, fn);
  if (reg != nullptr) r.metrics_json = reg->snapshot().to_json();
  std::printf("  %-28s %10.3f ms  %9.1f Melem/s\n", r.name.c_str(), r.wall_ms,
              r.melem_per_s());
  return r;
}

std::vector<Record> run_host_benches(bool smoke) {
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{256, 1024}
            : std::vector<std::size_t>{1024, 4096};
  const std::size_t workers =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  sathost::ThreadPool pool(workers);

  std::vector<Record> out;
  for (std::size_t n : sizes) {
    const auto a = sat::Matrix<float>::random(n, n, 1, 0.0f, 1.0f);
    sat::Matrix<float> b(n, n);
    const auto src = a.view();
    const auto dst = b.view();
    out.push_back(time_host("sequential", n, smoke, [&] {
      sathost::sat_sequential<float>(src, dst);
    }));
    out.push_back(time_host("two_pass", n, smoke, [&] {
      sathost::sat_two_pass<float>(src, dst);
    }));
    // tile=64: the default and the configuration the blocked-vs-sequential
    // regression case below watches.
    out.push_back(time_host("blocked", n, smoke, [&] {
      sathost::sat_blocked<float>(src, dst, 64);
    }));
    {
      // Instrumented rows: the ledger carries each run's metrics snapshot
      // (accumulated over all timed iterations) next to its timing.
      obs::Registry reg;
      out.push_back(time_host(
          "simd", n, smoke,
          [&] { sathost::sat_simd<float>(src, dst, 4096, &reg); }, &reg));
    }
    {
      obs::Registry reg;
      pool.set_obs(&reg, nullptr);
      out.push_back(time_host(
          "parallel", n, smoke,
          [&] { sathost::sat_parallel<float>(pool, src, dst); }, &reg));
      pool.set_obs(nullptr, nullptr);
    }
    {
      obs::Registry reg;
      pool.set_obs(&reg, nullptr);
      out.push_back(time_host(
          "wavefront", n, smoke,
          [&] { sathost::sat_wavefront<float>(pool, src, dst, 128); }, &reg));
      pool.set_obs(nullptr, nullptr);
    }
    // The paper's 1R1W-SKSS-LB on the host. The primary row runs the
    // engine's auto tile width (worker-count-scaled) and carries the
    // look-back metrics snapshot; the fixed-W sweep rows bracket the
    // tile-size tradeoff (per-tile dispatch+flag overhead and lost access
    // locality at small W vs. parallel slack at large W).
    {
      obs::Registry reg;
      sathost::SkssLbOptions opt;
      opt.metrics = &reg;
      out.push_back(time_host(
          "skss_lb", n, smoke,
          [&] { sathost::sat_skss_lb<float>(pool, src, dst, opt); }, &reg));
    }
    for (std::size_t w : {std::size_t{64}, std::size_t{128}, std::size_t{256}}) {
      obs::Registry reg;
      sathost::SkssLbOptions opt;
      opt.tile_w = w;
      opt.metrics = &reg;
      out.push_back(time_host(
          "skss_lb_w" + std::to_string(w), n, smoke,
          [&] { sathost::sat_skss_lb<float>(pool, src, dst, opt); }, &reg));
    }
    if (!smoke && n >= 4096) {
      // Worker-count scaling rows (auto W): on a multicore bench machine
      // these document the 1 → 2 → 4 → 8 speedup; on a 1-core box they
      // document oversubscription overhead instead. Like every
      // multi-config head-to-head in this ledger the rows are INTERLEAVED
      // — one iteration of each worker count per round — so slow machine
      // drift over the run penalizes all counts equally instead of
      // whichever ran last.
      const std::size_t counts[] = {1, 2, 4, 8};
      std::vector<std::unique_ptr<sathost::ThreadPool>> tpools;
      for (std::size_t t : counts)
        tpools.push_back(std::make_unique<sathost::ThreadPool>(t));
      const int iters = iterations_for(n, smoke);
      double best[std::size(counts)] = {};
      for (int i = 0; i < iters; ++i)
        for (std::size_t k = 0; k < std::size(counts); ++k) {
          sathost::SkssLbOptions opt;
          const double ms = satbench::time_best_ms(1, [&] {
            sathost::sat_skss_lb<float>(*tpools[k], src, dst, opt);
          });
          if (i == 0 || ms < best[k]) best[k] = ms;
        }
      for (std::size_t k = 0; k < std::size(counts); ++k) {
        Record r;
        r.name = "host_sat/skss_lb_t" + std::to_string(counts[k]) + "/" +
                 std::to_string(n);
        r.impl = "skss_lb_t" + std::to_string(counts[k]);
        r.dtype = "f32";
        r.n = n;
        r.elems = n * n;
        r.iterations = iters;
        r.wall_ms = best[k];
        std::printf("  %-28s %10.3f ms  %9.1f Melem/s\n", r.name.c_str(),
                    r.wall_ms, r.melem_per_s());
        out.push_back(r);
      }
    }
    // Storage-mode rows (docs/host_engine.md, "Storage modes").
    // skss_lb_resid16: the SKSS-LB engine writing tiled base+residual
    // output instead of the dense table. Binary 0/1 i32 input with W=128
    // keeps every 128×128 tile-local SAT ≤ 16384, so all tiles take the
    // u16 residual plane — 2 output bytes per element instead of 4. The
    // row's metrics snapshot carries host.storage.{residual,dense}_bytes;
    // bench-smoke CI asserts the ≥40% byte reduction from them.
    {
      const auto ai = sat::Matrix<std::int32_t>::random(n, n, 1, 0, 1);
      const auto srci = ai.view();
      sat::TiledSat<std::int32_t> tiled(n, n, 128);
      obs::Registry reg;
      sathost::SkssLbOptions opt;
      opt.tile_w = 128;
      opt.metrics = &reg;
      Record r = time_host(
          "skss_lb_resid16", n, smoke,
          [&] {
            sathost::sat_skss_lb_residual<std::int32_t>(pool, srci, tiled,
                                                        opt);
          },
          &reg);
      r.dtype = "i32";
      out.push_back(r);
    }
    // skss_lb_kahan: the f32 engine with Kahan-compensated column
    // accumulation — what the compensation costs on top of the plain row.
    {
      obs::Registry reg;
      sathost::SkssLbOptions opt;
      opt.kahan = true;
      opt.metrics = &reg;
      out.push_back(time_host(
          "skss_lb_kahan", n, smoke,
          [&] { sathost::sat_skss_lb<float>(pool, src, dst, opt); }, &reg));
    }
    // Batch-pipeline row: kBatch same-size images through one scheduler
    // call (sat_skss_lb_batch), so late tiles of image k overlap early
    // tiles of image k+1 instead of hitting a full barrier per image.
    // Throughput counts all images' elements. Bounded to the small sizes —
    // the row measures cross-image pipelining, which matters most when a
    // single image has too little parallel slack to fill the pool.
    if (n <= 1024) {
      constexpr std::size_t kBatch = 8;
      std::vector<sat::Matrix<float>> ins;
      std::vector<sat::Matrix<float>> outs;
      std::vector<satutil::Span2d<const float>> srcs;
      std::vector<satutil::Span2d<float>> dsts;
      for (std::size_t k = 0; k < kBatch; ++k) {
        ins.push_back(sat::Matrix<float>::random(n, n, 2 + k, 0.0f, 1.0f));
        outs.emplace_back(n, n);
      }
      for (std::size_t k = 0; k < kBatch; ++k) {
        srcs.push_back(ins[k].view());
        dsts.push_back(outs[k].view());
      }
      obs::Registry reg;
      pool.set_obs(&reg, nullptr);
      sathost::SkssLbOptions opt;
      opt.metrics = &reg;
      Record r;
      r.name = "host_sat/skss_lb_batch" + std::to_string(kBatch) + "/" +
               std::to_string(n);
      r.impl = "skss_lb_batch" + std::to_string(kBatch);
      r.dtype = "f32";
      r.n = n;
      r.elems = kBatch * n * n;
      r.iterations = iterations_for(n, smoke);
      r.wall_ms = satbench::time_best_ms(r.iterations, [&] {
        sathost::sat_skss_lb_batch<float>(pool, srcs, dsts, opt);
      });
      r.metrics_json = reg.snapshot().to_json();
      pool.set_obs(nullptr, nullptr);
      std::printf("  %-28s %10.3f ms  %9.1f Melem/s\n", r.name.c_str(),
                  r.wall_ms, r.melem_per_s());
      out.push_back(r);
    }
    // Service-overhead row: the same 8-image batch as skss_lb_batch8, but
    // client → satd → batch engine over a loopback socket — framing, queue
    // admission, shape coalescing, result streaming. The delta against the
    // direct-call row is what the daemon costs (docs/satd.md). Warn-only
    // in ledger_diff like every host_sat/*/1024 row.
    if (n == 1024) {
      constexpr std::size_t kBatch = 8;
      satd::ServerOptions sopts;
      sopts.batch_max = kBatch;
      sopts.queue_cap = 2 * kBatch;
      satd::Server server(sopts);
      if (!server.start()) {
        std::fprintf(stderr, "  satd_loopback: server start failed, "
                             "skipping row\n");
      } else {
        satd::Client client;
        if (!client.connect(server.port())) {
          std::fprintf(stderr, "  satd_loopback: connect failed, "
                               "skipping row\n");
        } else {
          std::vector<std::vector<std::uint8_t>> payloads;
          for (std::size_t k = 0; k < kBatch; ++k) {
            const auto img =
                sat::Matrix<float>::random(n, n, 2 + k, 0.0f, 1.0f);
            payloads.push_back(satd::encode_matrix_payload(
                static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(n),
                satd::Dtype::kF32, img.view().data()));
          }
          Record r;
          r.name = "host_sat/satd_loopback/" + std::to_string(n);
          r.impl = "satd_loopback";
          r.dtype = "f32";
          r.n = n;
          r.elems = kBatch * n * n;
          r.iterations = iterations_for(n, smoke);
          r.wall_ms = satbench::time_best_ms(r.iterations, [&] {
            // Pipelined burst: all requests in flight before any reply is
            // read, so the whole batch coalesces into one engine pass.
            for (std::size_t k = 0; k < kBatch; ++k) {
              if (!client.send(satd::Type::kCompute, k + 1, payloads[k]))
                std::abort();
            }
            for (std::size_t k = 0; k < kBatch; ++k) {
              satd::Frame reply;
              if (!client.recv(reply) || reply.type != satd::Type::kResult)
                std::abort();
            }
          });
          r.metrics_json = server.registry().snapshot().to_json();
          std::printf("  %-28s %10.3f ms  %9.1f Melem/s\n", r.name.c_str(),
                      r.wall_ms, r.melem_per_s());
          out.push_back(r);
        }
      }
      server.stop();
    }
  }
  if (!smoke) {
    // n=8192 head-to-head of the two leading engines only (a full sweep at
    // 256 MiB/matrix would double the ledger runtime for little signal).
    // The two are INTERLEAVED — one iteration of each, alternating — so a
    // machine that slows over the minutes-long ledger run (thermal /
    // noisy-neighbour drift) penalizes both rows equally instead of
    // whichever happened to run last.
    const std::size_t n = 8192;
    const auto a = sat::Matrix<float>::random(n, n, 1, 0.0f, 1.0f);
    sat::Matrix<float> b(n, n);
    const auto src = a.view();
    const auto dst = b.view();
    obs::Registry reg;
    sathost::SkssLbOptions opt;
    opt.metrics = &reg;
    const int iters = iterations_for(n, smoke);
    double best_simd = 0.0, best_skss = 0.0;
    for (int i = 0; i < iters; ++i) {
      const double t_simd =
          satbench::time_best_ms(1, [&] { sathost::sat_simd<float>(src, dst); });
      const double t_skss = satbench::time_best_ms(
          1, [&] { sathost::sat_skss_lb<float>(pool, src, dst, opt); });
      if (i == 0 || t_simd < best_simd) best_simd = t_simd;
      if (i == 0 || t_skss < best_skss) best_skss = t_skss;
    }
    for (auto [impl, ms, metrics] :
         {std::tuple<const char*, double, obs::Registry*>{"simd", best_simd,
                                                          nullptr},
          {"skss_lb", best_skss, &reg}}) {
      Record r;
      r.name = std::string("host_sat/") + impl + "/" + std::to_string(n);
      r.impl = impl;
      r.dtype = "f32";
      r.n = n;
      r.elems = n * n;
      r.iterations = iters;
      r.wall_ms = ms;
      if (metrics != nullptr) r.metrics_json = metrics->snapshot().to_json();
      std::printf("  %-28s %10.3f ms  %9.1f Melem/s\n", r.name.c_str(),
                  r.wall_ms, r.melem_per_s());
      out.push_back(r);
    }
    // Storage head-to-head at 8192²: dense i32 SKSS-LB vs the residual
    // encoder on the SAME binary 0/1 input, same W — the only variable is
    // the output representation (4 bytes/element streamed vs 2). W=256:
    // random binary tiles stay far below the u16 range in practice, and the
    // exact per-tile range check falls back to u32 if one ever does not
    // (host.storage.overflow_tiles counts it). Like the simd/skss_lb pair
    // above the two are INTERLEAVED so machine drift penalizes both
    // equally. ledger_diff gates the residual row; whether the byte saving
    // becomes a speedup depends on the machine being store-bandwidth-bound
    // (docs/host_engine.md, "Storage modes").
    {
      const auto ai = sat::Matrix<std::int32_t>::random(n, n, 1, 0, 1);
      sat::Matrix<std::int32_t> bi(n, n);
      const auto srci = ai.view();
      const auto dsti = bi.view();
      sat::TiledSat<std::int32_t> tiled(n, n, 256);
      obs::Registry rreg;
      sathost::SkssLbOptions dense_opt;
      dense_opt.tile_w = 256;
      sathost::SkssLbOptions resid_opt;
      resid_opt.tile_w = 256;
      resid_opt.metrics = &rreg;
      double best_dense = 0.0, best_resid = 0.0;
      for (int i = 0; i < iters; ++i) {
        const double t_dense = satbench::time_best_ms(1, [&] {
          sathost::sat_skss_lb<std::int32_t>(pool, srci, dsti, dense_opt);
        });
        const double t_resid = satbench::time_best_ms(1, [&] {
          sathost::sat_skss_lb_residual<std::int32_t>(pool, srci, tiled,
                                                      resid_opt);
        });
        if (i == 0 || t_dense < best_dense) best_dense = t_dense;
        if (i == 0 || t_resid < best_resid) best_resid = t_resid;
      }
      for (auto [impl, ms, metrics] :
           {std::tuple<const char*, double, obs::Registry*>{
                "skss_lb_i32", best_dense, nullptr},
            {"skss_lb_resid16", best_resid, &rreg}}) {
        Record r;
        r.name = std::string("host_sat/") + impl + "/" + std::to_string(n);
        r.impl = impl;
        r.dtype = "i32";
        r.n = n;
        r.elems = n * n;
        r.iterations = iters;
        r.wall_ms = ms;
        if (metrics != nullptr) r.metrics_json = metrics->snapshot().to_json();
        std::printf("  %-28s %10.3f ms  %9.1f Melem/s\n", r.name.c_str(),
                    r.wall_ms, r.melem_per_s());
        out.push_back(r);
      }
    }
  }
  return out;
}

std::vector<Record> run_sim_benches(bool smoke) {
  // The bench_table3 hot path: count-only SKSS-LB cells (the sizes that
  // dominate a full Table III regeneration).
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1024}
            : std::vector<std::size_t>{4096, 16384};
  std::vector<Record> out;
  for (std::size_t n : sizes) {
    Record r;
    r.name = "sim_count_only/skss_lb/" + std::to_string(n);
    r.impl = "skss_lb";
    r.dtype = "f32";
    r.n = n;
    r.elems = n * n;
    r.iterations = smoke ? 3 : 5;
    obs::Registry reg;
    r.wall_ms = satbench::time_best_ms(r.iterations, [&] {
      (void)satmodel::run_cell(n, satalgo::Algorithm::kSkssLb, 64,
                               /*materialize=*/false, /*seed=*/1, &reg);
    });
    r.metrics_json = reg.snapshot().to_json();
    std::printf("  %-28s %10.3f ms  %9.1f Melem/s\n", r.name.c_str(),
                r.wall_ms, r.melem_per_s());
    out.push_back(r);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  satutil::ArgParser args("run_benches",
                          "regenerate the BENCH_*.json perf ledger");
  args.add("out-dir", ".", "directory to write BENCH_*.json into")
      .add_flag("smoke", "small sizes only (CI smoke run)");
  if (!args.parse(argc, argv)) return 1;
  const bool smoke = args.get_flag("smoke");
  const std::string dir = args.get("out-dir");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort; fopen reports

  std::printf("run_benches: git %s, simd backend %s, %s run\n",
              satbench::git_rev(), satsimd::backend_name(),
              smoke ? "smoke" : "full");

  std::printf("host SAT implementations:\n");
  const auto host = run_host_benches(smoke);
  std::printf("simulator (count-only Table III cells):\n");
  const auto sim = run_sim_benches(smoke);

  const std::string host_path = dir + "/BENCH_host_sat.json";
  const std::string sim_path = dir + "/BENCH_sim.json";
  if (!satbench::write_json(host_path, host, satsimd::backend_name(), smoke) ||
      !satbench::write_json(sim_path, sim, satsimd::backend_name(), smoke)) {
    std::fprintf(stderr, "run_benches: failed to write JSON to %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", host_path.c_str(), sim_path.c_str());
  return 0;
}
